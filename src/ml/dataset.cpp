#include "drbw/ml/dataset.hpp"

#include <algorithm>
#include <limits>

namespace drbw::ml {

void Dataset::add(std::vector<double> row, Label label) {
  add(std::move(row), label, "");
}

void Dataset::add(std::vector<double> row, Label label, std::string tag) {
  if (feature_names_.empty() && rows_.empty()) {
    // Anonymous columns when the caller never named them.
    for (std::size_t i = 0; i < row.size(); ++i) {
      feature_names_.push_back("f" + std::to_string(i));
    }
  }
  DRBW_CHECK_MSG(row.size() == feature_names_.size(),
                 "row has " << row.size() << " features, dataset has "
                            << feature_names_.size());
  rows_.push_back(std::move(row));
  labels_.push_back(label);
  tags_.push_back(std::move(tag));
}

std::size_t Dataset::count(Label label) const {
  return static_cast<std::size_t>(
      std::count(labels_.begin(), labels_.end(), label));
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(feature_names_);
  for (const std::size_t i : indices) {
    DRBW_CHECK_MSG(i < rows_.size(), "subset index " << i << " out of range");
    out.add(rows_[i], labels_[i], tags_[i]);
  }
  return out;
}

Normalizer Normalizer::fit(const Dataset& data) {
  DRBW_CHECK_MSG(data.size() > 0, "cannot fit normalizer on empty dataset");
  Normalizer n;
  const std::size_t f = data.num_features();
  n.lo_.assign(f, std::numeric_limits<double>::infinity());
  n.hi_.assign(f, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& row = data.row(i);
    for (std::size_t j = 0; j < f; ++j) {
      n.lo_[j] = std::min(n.lo_[j], row[j]);
      n.hi_[j] = std::max(n.hi_[j], row[j]);
    }
  }
  return n;
}

double Normalizer::apply_one(std::size_t feature, double value) const {
  DRBW_CHECK_MSG(feature < lo_.size(), "feature index out of range");
  const double span = hi_[feature] - lo_[feature];
  if (span <= 0.0) return 0.0;  // constant feature carries no information
  return (value - lo_[feature]) / span;  // deliberately NOT clamped: unseen
                                         // magnitudes should look extreme
}

std::vector<double> Normalizer::apply(const std::vector<double>& row) const {
  DRBW_CHECK_MSG(row.size() == lo_.size(),
                 "row arity " << row.size() << " != normalizer " << lo_.size());
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) out[j] = apply_one(j, row[j]);
  return out;
}

Json Normalizer::to_json() const {
  Json j;
  // Range-constructing the arrays (implicit double -> Json) sidesteps the
  // push_back relocation path, where GCC 12's inliner reports spurious
  // -Wmaybe-uninitialized warnings inside the variant move machinery.
  JsonArray lo(lo_.begin(), lo_.end());
  JsonArray hi(hi_.begin(), hi_.end());
  j.set("lo", Json(std::move(lo)));
  j.set("hi", Json(std::move(hi)));
  return j;
}

Normalizer Normalizer::from_json(const Json& json) {
  Normalizer n;
  for (const Json& v : json.at("lo").as_array()) n.lo_.push_back(v.as_number());
  for (const Json& v : json.at("hi").as_array()) n.hi_.push_back(v.as_number());
  DRBW_CHECK_MSG(n.lo_.size() == n.hi_.size(), "normalizer lo/hi mismatch");
  return n;
}

}  // namespace drbw::ml
