#include "drbw/ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "drbw/util/rng.hpp"
#include "drbw/util/task_pool.hpp"

namespace drbw::ml {

RandomForest RandomForest::train(const Dataset& data, ForestParams params) {
  DRBW_CHECK_MSG(data.size() > 0, "cannot train forest on empty dataset");
  DRBW_CHECK_MSG(params.num_trees >= 1, "forest needs at least one tree");

  RandomForest forest;
  forest.feature_names_ = data.feature_names();
  forest.normalizer_ = Normalizer::fit(data);

  Dataset normalized(data.feature_names());
  for (std::size_t i = 0; i < data.size(); ++i) {
    normalized.add(forest.normalizer_.apply(data.row(i)), data.label(i));
  }

  const std::size_t total_features = data.num_features();
  // Default subset size: sqrt(#features), but never below 2 — with one
  // feature per tree no tree can express an interaction.
  std::size_t per_tree =
      params.features_per_tree > 0
          ? static_cast<std::size_t>(params.features_per_tree)
          : static_cast<std::size_t>(
                std::max(2.0, std::sqrt(static_cast<double>(total_features))));
  per_tree = std::min(per_tree, total_features);

  // Each tree draws bootstrap rows and its feature subset from an RNG
  // stream forked off the forest seed by tree index — no shared stream, so
  // trees can be grown on any worker in any order and the forest comes out
  // identical for every `jobs` value.
  const Rng base(params.seed);
  forest.trees_.resize(static_cast<std::size_t>(params.num_trees));
  forest.feature_maps_.resize(static_cast<std::size_t>(params.num_trees));
  util::TaskPool pool(params.jobs);
  pool.parallel_for(static_cast<std::size_t>(params.num_trees), [&](std::size_t t) {
    Rng rng = base.fork(t);

    // Bootstrap rows.
    std::vector<std::size_t> rows(normalized.size());
    for (auto& r : rows) r = rng.bounded(normalized.size());

    // Random feature subset (without replacement).
    std::vector<std::size_t> all(total_features);
    std::iota(all.begin(), all.end(), 0);
    for (std::size_t i = all.size(); i > 1; --i) {
      std::swap(all[i - 1], all[rng.bounded(i)]);
    }
    std::vector<std::size_t> subset(all.begin(),
                                    all.begin() + static_cast<long>(per_tree));
    std::sort(subset.begin(), subset.end());

    Dataset sample;
    for (const std::size_t r : rows) {
      std::vector<double> projected;
      projected.reserve(subset.size());
      for (const std::size_t f : subset) projected.push_back(normalized.row(r)[f]);
      sample.add(std::move(projected), normalized.label(r));
    }
    // A bootstrap can come out single-class; such a tree is a valid
    // constant voter.
    forest.trees_[t] = DecisionTree::train(sample, params.tree);
    forest.feature_maps_[t] = std::move(subset);
  });
  return forest;
}

double RandomForest::vote_fraction(const std::vector<double>& raw_row) const {
  DRBW_CHECK_MSG(!trees_.empty(), "predict on untrained forest");
  const std::vector<double> normalized = normalizer_.apply(raw_row);
  int rmc_votes = 0;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    std::vector<double> projected;
    projected.reserve(feature_maps_[t].size());
    for (const std::size_t f : feature_maps_[t]) projected.push_back(normalized[f]);
    rmc_votes += trees_[t].predict(projected) == Label::kRmc ? 1 : 0;
  }
  return static_cast<double>(rmc_votes) / static_cast<double>(trees_.size());
}

Label RandomForest::predict(const std::vector<double>& raw_row) const {
  return vote_fraction(raw_row) > 0.5 ? Label::kRmc : Label::kGood;
}

Explanation RandomForest::predict_explained(
    const std::vector<double>& raw_row) const {
  DRBW_CHECK_MSG(!trees_.empty(), "predict on untrained forest");
  const std::vector<double> normalized = normalizer_.apply(raw_row);
  Explanation out;
  out.leaf = -1;
  out.attributions.assign(feature_names_.size(), 0.0);
  int rmc_votes = 0;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    std::vector<double> projected;
    projected.reserve(feature_maps_[t].size());
    for (const std::size_t f : feature_maps_[t]) projected.push_back(normalized[f]);
    const Explanation tree_exp =
        trees_[t].predict_explained(projected, feature_maps_[t].size());
    rmc_votes += tree_exp.label == Label::kRmc ? 1 : 0;
    // Map the tree's subspace attributions back to dataset columns.
    for (std::size_t c = 0; c < feature_maps_[t].size(); ++c) {
      out.attributions[feature_maps_[t][c]] += tree_exp.attributions[c];
    }
  }
  for (double& a : out.attributions) {
    a /= static_cast<double>(trees_.size());
  }
  const double vote =
      static_cast<double>(rmc_votes) / static_cast<double>(trees_.size());
  out.label = vote > 0.5 ? Label::kRmc : Label::kGood;
  out.confidence = out.label == Label::kRmc ? vote : 1.0 - vote;
  return out;
}

ConfusionMatrix evaluate_forest(const RandomForest& model, const Dataset& data) {
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < data.size(); ++i) {
    cm.record(data.label(i), model.predict(data.row(i)));
  }
  return cm;
}

CrossValidationResult stratified_kfold_forest(const Dataset& data, int folds,
                                              ForestParams params,
                                              std::uint64_t seed) {
  DRBW_CHECK_MSG(folds >= 2, "cross-validation needs at least 2 folds");
  std::vector<std::size_t> good_idx, rmc_idx;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (data.label(i) == Label::kRmc ? rmc_idx : good_idx).push_back(i);
  }
  Rng rng(seed);
  auto shuffle = [&rng](std::vector<std::size_t>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[rng.bounded(i)]);
    }
  };
  shuffle(good_idx);
  shuffle(rmc_idx);

  std::vector<std::vector<std::size_t>> fold_members(
      static_cast<std::size_t>(folds));
  std::size_t dealt = 0;
  for (const auto* cls : {&good_idx, &rmc_idx}) {
    for (const std::size_t i : *cls) {
      fold_members[dealt++ % static_cast<std::size_t>(folds)].push_back(i);
    }
  }

  // Folds train on disjoint seeds and merge order-independent counts, so
  // they parallelize cleanly; per-fold results land in their own slot and
  // merge in fold order to keep the result identical at any `jobs`.
  CrossValidationResult result;
  result.folds = folds;
  std::vector<ConfusionMatrix> fold_confusion(static_cast<std::size_t>(folds));
  util::TaskPool pool(params.jobs);
  pool.parallel_for(static_cast<std::size_t>(folds), [&](std::size_t f) {
    std::vector<std::size_t> train_idx;
    for (int g = 0; g < folds; ++g) {
      if (g == static_cast<int>(f)) continue;
      train_idx.insert(train_idx.end(),
                       fold_members[static_cast<std::size_t>(g)].begin(),
                       fold_members[static_cast<std::size_t>(g)].end());
    }
    const Dataset train = data.subset(train_idx);
    if (train.count(Label::kGood) == 0 || train.count(Label::kRmc) == 0) return;
    ForestParams fold_params = params;
    fold_params.jobs = 1;  // parallelism lives at the fold level here
    fold_params.seed = params.seed + static_cast<std::uint64_t>(f) * 7919;
    const RandomForest model = RandomForest::train(train, fold_params);
    fold_confusion[f] = evaluate_forest(model, data.subset(fold_members[f]));
  });
  for (const ConfusionMatrix& cm : fold_confusion) result.confusion.merge(cm);
  result.accuracy = result.confusion.correctness();
  return result;
}

}  // namespace drbw::ml
