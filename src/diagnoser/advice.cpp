#include "drbw/diagnoser/advice.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "drbw/util/strings.hpp"

namespace drbw::diagnoser {

const char* remedy_name(Remedy remedy) {
  switch (remedy) {
    case Remedy::kColocate: return "co-locate";
    case Remedy::kReplicate: return "replicate";
    case Remedy::kMigrate: return "migrate";
    case Remedy::kInterleave: return "interleave";
  }
  return "?";
}

std::vector<ObjectEvidence> collect_evidence(
    const core::ProfileResult& profile,
    const std::vector<topology::ChannelId>& contended) {
  struct Accum {
    std::uint64_t samples = 0;
    std::uint64_t writes = 0;
    std::set<topology::NodeId> nodes;
    /// 64 KiB region -> set of software threads seen touching it.  Region
    /// granularity (not cache lines): at a 1/2000 sampling rate two
    /// threads essentially never sample the same line, but partitioned
    /// arrays keep whole regions single-threaded while shared arrays mix
    /// threads within every region.
    std::map<mem::Addr, std::set<std::uint32_t>> region_threads;
  };
  std::map<std::uint32_t, Accum> per_object;
  std::uint64_t total = 0;

  for (const topology::ChannelId want : contended) {
    for (const core::ChannelProfile& channel : profile.channels) {
      if (!(channel.channel == want)) continue;
      for (const core::AttributedSample& s : channel.samples) {
        ++total;
        if (s.object == core::kUnknownObject) continue;
        Accum& acc = per_object[s.object];
        ++acc.samples;
        acc.writes += s.sample.is_write ? 1 : 0;
        acc.nodes.insert(s.src_node);
        acc.region_threads[s.sample.address >> 16].insert(s.sample.tid);
      }
    }
  }

  std::vector<ObjectEvidence> out;
  for (const auto& [object, acc] : per_object) {
    ObjectEvidence e;
    e.object = object;
    e.site = profile.tracker.object(object).site;
    e.samples = acc.samples;
    e.cf = total > 0 ? static_cast<double>(acc.samples) /
                           static_cast<double>(total)
                     : 0.0;
    e.write_fraction = acc.samples > 0
                           ? static_cast<double>(acc.writes) /
                                 static_cast<double>(acc.samples)
                           : 0.0;
    e.accessing_nodes = static_cast<int>(acc.nodes.size());
    std::size_t shared_regions = 0;
    for (const auto& [region, threads] : acc.region_threads) {
      if (threads.size() > 1) ++shared_regions;
    }
    e.shared_line_fraction =
        acc.region_threads.empty()
            ? 0.0
            : static_cast<double>(shared_regions) /
                  static_cast<double>(acc.region_threads.size());
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const ObjectEvidence& a, const ObjectEvidence& b) {
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.site < b.site;
            });
  return out;
}

std::vector<Advice> advise(const core::ProfileResult& profile,
                           const std::vector<topology::ChannelId>& contended,
                           const AdviceConfig& config) {
  std::vector<Advice> out;
  for (ObjectEvidence& e : collect_evidence(profile, contended)) {
    if (e.cf < config.min_cf) continue;
    Advice advice;
    std::ostringstream why;
    if (e.accessing_nodes <= 1) {
      advice.remedy = Remedy::kMigrate;
      why << "accessed from a single remote node; bind the allocation to "
             "that node (numa_alloc_onnode)";
    } else if (e.shared_line_fraction >= config.sharing_threshold) {
      if (e.write_fraction <= config.read_only_threshold) {
        advice.remedy = Remedy::kReplicate;
        why << "read-shared by " << e.accessing_nodes
            << " nodes and (almost) never written — per-node shadow "
               "replicas make every access local";
      } else {
        advice.remedy = Remedy::kInterleave;
        why << "shared AND written (" << format_percent(e.write_fraction)
            << " writes) — replication would need coherence; interleave "
               "the pages to balance the load";
      }
    } else {
      advice.remedy = Remedy::kColocate;
      why << "threads touch disjoint regions — split the allocation and "
             "co-locate each segment with its computation";
    }
    advice.rationale = why.str();
    advice.evidence = std::move(e);
    out.push_back(std::move(advice));
  }
  return out;
}

std::string render_advice(const std::vector<Advice>& advice) {
  std::ostringstream os;
  if (advice.empty()) {
    os << "No heap object carries enough of the contended traffic to act "
          "on (statics/stack suspected - consider numactl --interleave).\n";
    return os.str();
  }
  os << "Optimization guidance (highest Contribution Fraction first):\n";
  for (const Advice& a : advice) {
    os << "  * " << a.evidence.site << "  [CF "
       << format_percent(a.evidence.cf) << ", writes "
       << format_percent(a.evidence.write_fraction) << ", "
       << a.evidence.accessing_nodes << " accessing node(s)]\n"
       << "      -> " << remedy_name(a.remedy) << ": " << a.rationale << '\n';
  }
  return os.str();
}

}  // namespace drbw::diagnoser
