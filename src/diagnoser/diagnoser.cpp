#include "drbw/diagnoser/diagnoser.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "drbw/fault/injector.hpp"
#include "drbw/util/ascii_chart.hpp"
#include "drbw/util/strings.hpp"

namespace drbw::diagnoser {

namespace {

/// Shared tally: samples per object over a set of channel profiles.
Diagnosis tally(const core::ProfileResult& profile,
                const std::vector<const core::ChannelProfile*>& channels) {
  Diagnosis d;
  std::map<std::uint32_t, std::uint64_t> per_object;
  for (const core::ChannelProfile* channel : channels) {
    d.channels.push_back(channel->channel);
    for (const core::AttributedSample& s : channel->samples) {
      ++d.total_samples;
      if (s.object == core::kUnknownObject) {
        ++d.untracked_samples;
      } else {
        ++per_object[s.object];
      }
    }
  }
  for (const auto& [object, samples] : per_object) {
    ObjectContribution c;
    c.object = object;
    c.site = profile.tracker.object(object).site;
    c.samples = samples;
    c.cf = d.total_samples > 0
               ? static_cast<double>(samples) /
                     static_cast<double>(d.total_samples)
               : 0.0;
    d.ranking.push_back(std::move(c));
  }
  d.untracked_cf = d.total_samples > 0
                       ? static_cast<double>(d.untracked_samples) /
                             static_cast<double>(d.total_samples)
                       : 0.0;
  std::sort(d.ranking.begin(), d.ranking.end(),
            [](const ObjectContribution& a, const ObjectContribution& b) {
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.site < b.site;  // deterministic tie-break
            });
  return d;
}

}  // namespace

std::vector<ObjectContribution> contributions_in_channel(
    const core::ProfileResult& profile, topology::ChannelId channel) {
  for (const core::ChannelProfile& cp : profile.channels) {
    if (cp.channel == channel) {
      return tally(profile, {&cp}).ranking;
    }
  }
  throw Error("channel not present in profile");
}

Diagnosis diagnose(const core::ProfileResult& profile,
                   const std::vector<topology::ChannelId>& contended) {
  // Fault site "diagnose.cf": chaos coverage for the Contribution-Fraction
  // stage.  Keyed by jobs-independent content (channel count and total
  // attributed samples), so the decision is identical at any --jobs value.
  std::uint64_t key = contended.size();
  for (const core::ChannelProfile& cp : profile.channels) {
    key += cp.samples.size();
  }
  fault::maybe_fail("diagnose.cf", key,
                    "injected diagnoser failure while ranking Contribution "
                    "Fractions over " +
                        std::to_string(contended.size()) + " channel(s)");
  std::vector<const core::ChannelProfile*> channels;
  for (const topology::ChannelId want : contended) {
    bool found = false;
    for (const core::ChannelProfile& cp : profile.channels) {
      if (cp.channel == want) {
        channels.push_back(&cp);
        found = true;
        break;
      }
    }
    DRBW_CHECK_MSG(found, "contended channel N" << want.src << "->N" << want.dst
                                                << " not present in profile");
  }
  return tally(profile, channels);
}

std::string render(const Diagnosis& diagnosis, std::size_t top_n) {
  std::ostringstream os;
  os << "Root-cause diagnosis over " << diagnosis.channels.size()
     << " contended channel(s), " << diagnosis.total_samples << " samples\n";
  BarChart chart("Contribution Fraction", 44);
  std::size_t shown = 0;
  for (const ObjectContribution& c : diagnosis.ranking) {
    if (shown++ >= top_n) break;
    chart.add(c.site, c.cf);
  }
  if (diagnosis.untracked_samples > 0) {
    chart.add("(untracked static/stack data)", diagnosis.untracked_cf);
  }
  os << chart.render();
  if (!diagnosis.ranking.empty()) {
    os << "Top object: " << diagnosis.ranking.front().site << "  (CF "
       << format_percent(diagnosis.ranking.front().cf)
       << ") — co-locate or replicate this allocation first.\n";
  } else if (diagnosis.untracked_samples > 0) {
    os << "All contended traffic touches untracked (static/stack) data; "
          "heap-level co-location is not applicable — consider interleaving "
          "(cf. the SP case study, §VIII-F).\n";
  }
  return os.str();
}

}  // namespace drbw::diagnoser
