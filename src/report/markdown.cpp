#include "drbw/report/markdown.hpp"

#include <sstream>

#include "drbw/fault/injector.hpp"
#include "drbw/util/artifact.hpp"
#include "drbw/util/strings.hpp"

namespace drbw::report {

namespace {

/// A 20-slot unicode-free bar for CF values (Markdown renders it verbatim).
std::string bar(double fraction) {
  const int filled =
      std::max(0, std::min(20, static_cast<int>(fraction * 20.0 + 0.5)));
  return std::string(static_cast<std::size_t>(filled), '#') +
         std::string(static_cast<std::size_t>(20 - filled), '.');
}

}  // namespace

std::string to_markdown(const Report& result, const topology::Machine& machine,
                        const ReportMeta& meta) {
  std::ostringstream md;
  md << "# " << meta.title << "\n\n";
  if (!meta.workload.empty()) md << "*Workload:* " << meta.workload << "  \n";
  md << "*Machine:* " << machine.spec().name << " (" << machine.num_nodes()
     << " NUMA nodes, " << machine.num_cores() << " cores)  \n";
  md << "*Verdict:* **"
     << (result.rmc ? "remote memory bandwidth contention (rmc)"
                    : "no remote bandwidth contention (good)")
     << "**\n";
  if (!meta.notes.empty()) md << "\n> " << meta.notes << "\n";

  md << "\n## Per-channel classification\n\n"
     << "| channel | samples@source | remote samples | avg remote latency "
        "(cyc) | verdict |\n"
     << "|---|---:|---:|---:|---|\n";
  for (const ChannelVerdict& v : result.channels) {
    md << "| " << machine.channel_name(v.channel) << " | "
       << v.features.scope_samples << " | "
       << format_fixed(v.features.values[5], 0) << " | "
       << format_fixed(v.features.values[6], 1) << " | "
       << (v.sparse ? "good (sparse)"
                    : (v.verdict == ml::Label::kRmc ? "**RMC**" : "good"))
       << " |\n";
  }

  if (result.rmc) {
    md << "\n## Root cause — Contribution Fractions\n\n"
       << "Aggregated over " << result.diagnosis.channels.size()
       << " contended channel(s), " << result.diagnosis.total_samples
       << " samples.\n\n"
       << "| data object | CF | samples | |\n|---|---:|---:|---|\n";
    for (const auto& c : result.diagnosis.ranking) {
      md << "| `" << c.site << "` | " << format_percent(c.cf) << " | "
         << c.samples << " | `" << bar(c.cf) << "` |\n";
    }
    if (result.diagnosis.untracked_samples > 0) {
      md << "| *(untracked static/stack data)* | "
         << format_percent(result.diagnosis.untracked_cf) << " | "
         << result.diagnosis.untracked_samples << " | `"
         << bar(result.diagnosis.untracked_cf) << "` |\n";
    }

    md << "\n## Optimization guidance\n\n";
    if (result.advice.empty()) {
      md << "No heap object dominates the contended traffic; the hot data "
            "is likely statically allocated — `numactl --interleave` is the "
            "available lever.\n";
    }
    for (const auto& a : result.advice) {
      md << "- **" << diagnoser::remedy_name(a.remedy) << "** `"
         << a.evidence.site << "` (CF " << format_percent(a.evidence.cf)
         << ", writes " << format_percent(a.evidence.write_fraction) << ", "
         << a.evidence.accessing_nodes << " accessing node(s)): "
         << a.rationale << "\n";
    }
  }
  return md.str();
}

std::string timeline_markdown(const std::vector<WindowVerdict>& windows,
                              const topology::Machine& machine) {
  std::ostringstream md;
  md << "\n## Contention timeline\n\n"
     << "| window (cycles) | samples | verdict | contended channels |\n"
     << "|---|---:|---|---|\n";
  for (const WindowVerdict& w : windows) {
    std::vector<std::string> names;
    for (const auto& ch : w.contended) names.push_back(machine.channel_name(ch));
    md << "| [" << w.start_cycle << ", " << w.end_cycle << ") | " << w.samples
       << " | " << (w.rmc ? "**RMC**" : "good") << " | " << join(names, ", ")
       << " |\n";
  }
  return md.str();
}

std::string telemetry_markdown(const obs::Registry& registry,
                               bool include_diagnostic) {
  const std::vector<obs::Registry::Row> rows = registry.rows(include_diagnostic);
  if (rows.empty()) return "";
  std::ostringstream md;
  md << "\n## Run telemetry\n\n"
     << "Pipeline instrumentation (drbw::obs). Counters and histograms are\n"
     << "deterministic for identical workload + seed at any `--jobs` value.\n\n"
     << "| metric | kind | value | description |\n"
     << "|---|---|---:|---|\n";
  for (const obs::Registry::Row& row : rows) {
    md << "| `" << row.name << "` | " << row.kind << " | " << row.value
       << " | " << row.help << " |\n";
  }
  return md.str();
}

std::string robustness_markdown(const util::LoadStats& stats,
                                const std::string& source,
                                const std::string& load_mode) {
  std::ostringstream md;
  md << "\n## Robustness\n\n"
     << "Trace load accounting (`" << source << "`, " << load_mode
     << " mode). Quarantine counts are deterministic for identical input\n"
     << "and fault spec at any `--jobs` value.\n\n"
     << "| outcome | records |\n"
     << "|---|---:|\n"
     << "| seen | " << stats.records_seen << " |\n"
     << "| parsed ok | " << stats.records_ok << " |\n"
     << "| quarantined | " << stats.records_quarantined << " |\n"
     << "| checksum | " << (stats.checksum_ok ? "ok" : "FAILED (tolerated)")
     << " |\n";
  return md.str();
}

void write_file(const std::string& path, const std::string& markdown) {
  // Fault site "report.render": chaos coverage for the very tail of the
  // pipeline.  Keyed by the rendered content's size, jobs-independent.
  fault::maybe_fail("report.render", markdown.size(),
                    "injected report failure while rendering '" + path + "'");
  // Reports are artifacts too: route them through the atomic writer so a
  // crash mid-write never leaves a truncated report at the target path.
  util::atomic_write_file(path, markdown);
}

}  // namespace drbw::report
