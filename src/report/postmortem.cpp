#include "drbw/report/postmortem.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "drbw/util/artifact.hpp"
#include "drbw/util/strings.hpp"

namespace drbw::report {

namespace {

const Json* find_in(const Json* node, const char* key) {
  return node != nullptr && node->is_object() ? node->find(key) : nullptr;
}

std::string str_or(const Json* node, const std::string& fallback) {
  return node != nullptr && node->type() == Json::Type::kString
             ? node->as_string()
             : fallback;
}

double num_or(const Json* node, double fallback) {
  return node != nullptr && node->type() == Json::Type::kNumber
             ? node->as_number()
             : fallback;
}

std::uint64_t u64_or(const Json* node, std::uint64_t fallback) {
  return node != nullptr && node->type() == Json::Type::kNumber
             ? static_cast<std::uint64_t>(node->as_int())
             : fallback;
}

std::vector<obs::ArtifactRef> parse_artifact_refs(const Json* node) {
  std::vector<obs::ArtifactRef> refs;
  if (node == nullptr || !node->is_array()) return refs;
  for (const Json& entry : node->as_array()) {
    if (!entry.is_object()) continue;
    obs::ArtifactRef ref;
    ref.role = str_or(entry.find("role"), "");
    ref.path = str_or(entry.find("path"), "");
    ref.kind = str_or(entry.find("kind"), "");
    ref.version = static_cast<int>(num_or(entry.find("version"), 0));
    ref.bytes = u64_or(entry.find("bytes"), 0);
    const std::string crc_hex = str_or(entry.find("crc32"), "");
    if (!crc_hex.empty()) {
      ref.crc = static_cast<std::uint32_t>(
          std::strtoul(crc_hex.c_str(), nullptr, 16));
    }
    refs.push_back(std::move(ref));
  }
  return refs;
}

std::vector<obs::SpanStat> parse_spans(const Json* node) {
  std::vector<obs::SpanStat> spans;
  if (node == nullptr || !node->is_array()) return spans;
  for (const Json& entry : node->as_array()) {
    if (!entry.is_object()) continue;
    obs::SpanStat stat;
    stat.name = str_or(entry.find("name"), "");
    stat.count = u64_or(entry.find("count"), 0);
    stat.total_dur = u64_or(entry.find("total_dur"), 0);
    stat.max_dur = u64_or(entry.find("max_dur"), 0);
    spans.push_back(std::move(stat));
  }
  return spans;
}

}  // namespace

ManifestData load_manifest(const std::string& path) {
  const util::VersionedArtifact artifact = util::read_versioned_artifact(
      path, "manifest", obs::kManifestVersion, util::LoadPolicy{});
  if (artifact.legacy) {
    throw Error(path + ": not a DR-BW run manifest (missing '#drbw-manifest' "
                       "header)",
                ErrorCode::kParse);
  }
  ManifestData m;
  try {
    m.document = Json::parse(artifact.body);
  } catch (const Error& e) {
    throw Error(path + ": " + e.what(), ErrorCode::kParse);
  }
  const Json* golden = m.document.find("golden");
  const Json* context = m.document.find("context");
  m.subcommand = str_or(find_in(golden, "subcommand"), "");
  m.fault_spec = str_or(find_in(golden, "fault_spec"), "");
  if (const Json* degraded = find_in(golden, "degraded")) {
    m.degraded = degraded->type() == Json::Type::kBool && degraded->as_bool();
  }
  m.drift = str_or(find_in(golden, "drift"), "");
  if (const Json* outcome = find_in(golden, "outcome")) {
    m.status = str_or(outcome->find("status"), "ok");
    m.error_code = str_or(outcome->find("error_code"), "");
    m.exit_code = static_cast<int>(num_or(outcome->find("exit_code"), 0));
    m.message = str_or(outcome->find("message"), "");
  }
  if (const Json* load = find_in(golden, "load")) {
    m.has_load = true;
    m.records_seen = u64_or(load->find("records_seen"), 0);
    m.records_ok = u64_or(load->find("records_ok"), 0);
    m.records_quarantined = u64_or(load->find("records_quarantined"), 0);
    const Json* ok = load->find("checksum_ok");
    m.checksum_ok =
        ok == nullptr || ok->type() != Json::Type::kBool || ok->as_bool();
  }
  if (const Json* fires = find_in(golden, "fault_fires")) {
    if (fires->is_object()) {
      for (const auto& [site, count] : fires->as_object()) {
        m.fault_fires.emplace_back(site, u64_or(&count, 0));
      }
    }
  }
  m.spans = parse_spans(find_in(golden, "spans"));
  if (m.spans.empty()) m.spans = parse_spans(find_in(context, "spans"));
  if (const Json* metrics = find_in(golden, "metrics")) {
    if (const Json* counters = find_in(metrics, "counters")) {
      if (counters->is_object()) {
        for (const auto& [name, entry] : counters->as_object()) {
          if (!entry.is_object()) continue;
          m.counters.emplace_back(name, num_or(entry.find("value"), 0.0));
        }
      }
    }
  }
  m.inputs = parse_artifact_refs(find_in(golden, "inputs"));
  m.outputs = parse_artifact_refs(find_in(golden, "outputs"));
  m.jobs = static_cast<int>(num_or(find_in(context, "jobs"), 0));
  return m;
}

std::vector<FlightRecord> load_flight_dump(const std::string& path) {
  const util::VersionedArtifact artifact = util::read_versioned_artifact(
      path, "flight", obs::kFlightVersion, util::LoadPolicy{});
  if (artifact.legacy) {
    throw Error(path + ": not a DR-BW flight dump (missing '#drbw-flight' "
                       "header)",
                ErrorCode::kParse);
  }
  std::vector<FlightRecord> records;
  std::istringstream is(artifact.body);
  std::string line;
  std::size_t line_no = 1;  // the artifact header was line 1
  while (std::getline(is, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    if (line.rfind("track,", 0) == 0) continue;  // column header
    // track,seq,ts,value,tag,detail — detail is last, commas in it are safe.
    FlightRecord record;
    std::uint64_t* numeric[4] = {&record.track, &record.seq, &record.ts,
                                 &record.value};
    std::size_t begin = 0;
    bool ok = true;
    for (auto* field : numeric) {
      const std::size_t comma = line.find(',', begin);
      if (comma == std::string::npos) {
        ok = false;
        break;
      }
      char* end = nullptr;
      const std::string text = line.substr(begin, comma - begin);
      *field = std::strtoull(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || text.empty()) {
        ok = false;
        break;
      }
      begin = comma + 1;
    }
    const std::size_t tag_comma = ok ? line.find(',', begin) : std::string::npos;
    if (!ok || tag_comma == std::string::npos) {
      throw Error(path + ":" + std::to_string(line_no) +
                      ": malformed flight record '" + line + "'",
                  ErrorCode::kParse);
    }
    record.tag = line.substr(begin, tag_comma - begin);
    record.detail = line.substr(tag_comma + 1);
    records.push_back(std::move(record));
  }
  return records;
}

namespace {

std::string render_fire_list(
    const std::vector<std::pair<std::string, std::uint64_t>>& fires) {
  std::string out;
  for (std::size_t i = 0; i < fires.size(); ++i) {
    if (i > 0) out += ", ";
    out += fires[i].first + " x" + std::to_string(fires[i].second);
  }
  return out;
}

}  // namespace

DoctorReport doctor(const std::string& run_dir) {
  namespace fs = std::filesystem;
  DoctorReport rep;
  rep.run_dir = run_dir.empty() ? "." : run_dir;
  const fs::path dir(rep.run_dir);
  const std::string manifest_path = (dir / obs::kManifestFileName).string();
  util::require_input_file(manifest_path, "run manifest");
  rep.manifest = load_manifest(manifest_path);

  const std::string flight_path = (dir / obs::kFlightFileName).string();
  std::error_code ec;
  if (fs::exists(flight_path, ec)) {
    rep.flight = load_flight_dump(flight_path);
    rep.has_flight = true;
  }

  // The CLI notes stages from the main thread, which dumps as dense track 0;
  // the stage with the highest seq there is where the run last was.
  std::uint64_t best_seq = 0;
  for (const FlightRecord& record : rep.flight) {
    if (record.tag == "stage" && record.track == 0 && record.seq >= best_seq) {
      best_seq = record.seq;
      rep.last_stage = record.detail;
    }
  }

  const ManifestData& m = rep.manifest;
  int rank = 0;
  const auto add = [&](const std::string& title, const std::string& evidence,
                       const std::string& advice) {
    rep.findings.push_back(Finding{++rank, title, evidence, advice});
  };

  if (m.status == "error") {
    if (m.error_code == "fault-injected") {
      std::string evidence = "fault spec '" + m.fault_spec + "' armed";
      if (!m.fault_fires.empty()) {
        evidence += "; fired sites: " + render_fire_list(m.fault_fires);
      }
      evidence += "; error: " + m.message;
      add("injected fault fired", evidence,
          "this failure was requested via --inject-faults; drop the flag or "
          "change its seed= clause to move the fault elsewhere");
    } else if (m.error_code == "corrupt-artifact") {
      std::string evidence = "error: " + m.message;
      if (m.has_load) {
        evidence += "; load saw " + std::to_string(m.records_seen) +
                    " records, quarantined " +
                    std::to_string(m.records_quarantined) +
                    (m.checksum_ok ? "" : ", body checksum FAILED");
      }
      if (!m.inputs.empty()) {
        evidence += "; input '" + m.inputs.front().path + "'";
      }
      add("corrupt input artifact", evidence,
          m.has_load && m.records_quarantined > 0
              ? "retry with --load-mode lenient and a higher "
                "--max-bad-fraction, or regenerate the artifact with "
                "`drbw record`"
              : "retry with --load-mode lenient, or regenerate the artifact "
                "with `drbw record`");
    } else if (m.error_code == "parse-error") {
      add("unparseable artifact", "error: " + m.message,
          "the file is not a valid DR-BW artifact; regenerate it with the "
          "current binary (`drbw record` / `drbw train`)");
    } else if (m.error_code == "version-skew") {
      add("artifact version skew", "error: " + m.message,
          "the artifact's header (the offending token is named in the "
          "error) is newer than what this run accepted; re-record it with "
          "this build (`drbw record`), convert it to the expected version "
          "(`drbw convert --format csv`), or drop the "
          "--expect-trace-version pin / rebuild drbw");
    } else if (m.error_code == "not-found") {
      add("missing input file", "error: " + m.message,
          "check the path (the error message lists same-extension siblings "
          "when any exist)");
    } else if (m.error_code == "io-error") {
      add("I/O failure", "error: " + m.message,
          "check disk space and permissions for the paths involved, then "
          "retry");
    } else {
      add("run failed (" + (m.error_code.empty() ? "unknown" : m.error_code) +
              ")",
          "error: " + m.message, "rerun with --trace-out for a full trace of "
                                 "the failing pipeline");
    }
    // Injected damage often surfaces as a downstream parse/corruption
    // failure rather than kFaultInjected itself — implicate the spec.
    if (m.error_code != "fault-injected" && !m.fault_fires.empty()) {
      add("fault injection was active",
          "spec '" + m.fault_spec +
              "' fired: " + render_fire_list(m.fault_fires),
          "the damage above is likely injected, not organic; rerun without "
          "--inject-faults to confirm");
    }
    if (!rep.last_stage.empty()) {
      add("failing stage: " + rep.last_stage,
          "the flight recorder's last stage transition on the main track is "
          "'" + rep.last_stage + "'",
          "instrument or rerun that stage in isolation");
    }
  } else {
    if (m.records_quarantined > 0) {
      add("quarantined records on a passing run",
          std::to_string(m.records_quarantined) + " of " +
              std::to_string(m.records_seen) +
              " records were quarantined by the lenient load",
          "the verdict may rest on a thinned sample population; regenerate "
          "the trace if the fraction grows");
    }
    if (!m.checksum_ok) {
      add("tolerated checksum failure",
          "the artifact body failed crc32 validation but the lenient load "
          "continued",
          "regenerate the artifact; per-record validation caught what it "
          "could");
    }
    if (m.degraded) {
      add("run completed DEGRADED",
          "the manifest records degraded=true: `drbw serve` could not load "
          "a usable model and fell back to pass-through telemetry (no "
          "window was classified)",
          "re-train the model (`drbw train --out model.json`) or point "
          "--model at an intact artifact, then replay the trace");
    }
    if (m.subcommand == "serve") {
      const auto counter = [&](const char* name) {
        for (const auto& [key, value] : m.counters) {
          if (key == name) return value;
        }
        return 0.0;
      };
      const double quarantined =
          counter("drbw_serve_clients_quarantined_total");
      if (quarantined > 0) {
        add("clients quarantined by the circuit breaker",
            std::to_string(static_cast<std::uint64_t>(quarantined)) +
                " client(s) hit " + "consecutive-fault quarantine; their "
                "remaining samples were discarded (see "
                "drbw_serve_samples_dropped_total)",
            "inspect the fired serve.* sites above; raise --max-retries or "
            "--breaker-threshold if transient faults should be ridden out");
      }
      if (m.drift == "suspected") {
        add("model drift suspected (DriftSuspected)",
            "the manifest records drift=\"suspected\": at least one client's "
            "serving distribution diverged from the model's training "
            "baseline past --drift-threshold (per-client PSI scores are in "
            "the snapshot's drift section and drbw_model_drift_score)",
            "the model may be stale for this workload — re-train on a "
            "recent trace (`drbw train`), or raise --drift-threshold if the "
            "shift is expected");
      } else if (m.drift == "unavailable" && !m.degraded) {
        add("drift detection unavailable",
            "the manifest records drift=\"unavailable\": the model loaded "
            "but carries no training baseline (saved before model format "
            "v3), so serving-time drift could not be measured",
            "re-save the model with this build (`drbw train --out "
            "model.json`) to embed the drift baseline");
      }
      const double shed = counter("drbw_serve_samples_shed_total");
      const double rejected = counter("drbw_serve_samples_rejected_total");
      if (shed > 0 || rejected > 0) {
        add("ingest queues overflowed",
            std::to_string(static_cast<std::uint64_t>(shed)) +
                " sample(s) shed and " +
                std::to_string(static_cast<std::uint64_t>(rejected)) +
                " rejected under overload",
            "raise --queue-depth or --drain-rate, or switch --overload to "
            "block if losing samples is worse than added latency");
      }
    }
    if (!m.fault_fires.empty()) {
      add("fault sites fired on a passing run",
          "fired: " + render_fire_list(m.fault_fires),
          "injected damage was absorbed by the robustness layer; this is "
          "expected only under --inject-faults");
    }
  }

  // Fleet cross-link: sibling run dirs next to this one mean the run is part
  // of a corpus (chaos CI, batch evaluation) — one diagnosis rarely tells
  // the whole story there.  Ranked last: it redirects, it does not explain.
  std::error_code sibling_ec;
  const fs::path self = fs::absolute(dir, sibling_ec).lexically_normal();
  const fs::path parent = self.parent_path();
  if (!sibling_ec && !parent.empty() && fs::is_directory(parent, sibling_ec)) {
    std::vector<fs::path> siblings;
    for (fs::directory_iterator it(parent, sibling_ec), end;
         !sibling_ec && it != end; it.increment(sibling_ec)) {
      std::error_code entry_ec;
      if (!it->is_directory(entry_ec)) continue;
      if (it->path().lexically_normal() == self) continue;
      if (fs::exists(it->path() / obs::kManifestFileName, entry_ec)) {
        siblings.push_back(it->path());
      }
    }
    std::sort(siblings.begin(), siblings.end());
    if (!siblings.empty()) {
      std::size_t same_token = 0;
      std::size_t degraded_siblings = 0;
      for (const fs::path& sibling : siblings) {
        try {
          const ManifestData other = load_manifest(
              (sibling / obs::kManifestFileName).string());
          if (m.status == "error" && !m.error_code.empty() &&
              other.error_code == m.error_code) {
            ++same_token;
          }
          if (other.degraded) ++degraded_siblings;
        } catch (const Error&) {
          // A corrupt sibling manifest is the fleet tool's problem.
        }
      }
      std::string evidence = std::to_string(siblings.size()) +
                             " sibling run dir(s) under '" + parent.string() +
                             "'";
      if (m.status == "error" && !m.error_code.empty()) {
        evidence += "; " + std::to_string(same_token) +
                    " share error token '" + m.error_code + "'";
      }
      if (degraded_siblings > 0) {
        evidence += "; " + std::to_string(degraded_siblings) +
                    " sibling(s) ran degraded";
      }
      add("this run dir is part of a corpus", evidence,
          "aggregate all of them with `drbw fleet " + parent.string() + "`");
    }
  }
  return rep;
}

std::string render_doctor(const DoctorReport& rep) {
  const ManifestData& m = rep.manifest;
  std::ostringstream os;
  os << "run " << rep.run_dir << ": drbw " << m.subcommand;
  if (m.status == "ok") {
    os << " — completed (exit " << m.exit_code << ")\n";
  } else {
    os << " — FAILED (" << m.error_code << ", exit " << m.exit_code << ")\n";
  }
  if (rep.has_flight) {
    os << "flight: " << rep.flight.size() << " event(s)";
    if (!rep.last_stage.empty()) os << ", last stage '" << rep.last_stage << "'";
    os << '\n';
  } else {
    os << "flight: no dump found\n";
  }
  if (rep.findings.empty()) {
    os << "\nno findings — the run completed cleanly.\n";
    return os.str();
  }
  os << "\nfindings (most likely root cause first):\n";
  for (const Finding& finding : rep.findings) {
    os << "  " << finding.rank << ". " << finding.title << '\n'
       << "     evidence: " << finding.evidence << '\n'
       << "     advice:   " << finding.advice << '\n';
  }
  return os.str();
}

PerfDiff perf_diff(const ManifestData& before, const ManifestData& after,
                   double threshold) {
  PerfDiff diff;
  diff.threshold = threshold;
  diff.spans_comparable = !before.spans.empty() && !after.spans.empty();

  const auto compare = [&](const std::string& name, const std::string& kind,
                           double a, double b) {
    PerfDelta delta;
    delta.name = name;
    delta.kind = kind;
    delta.before = a;
    delta.after = b;
    delta.ratio = a > 0.0 ? b / a : 1.0;
    delta.regression = a > 0.0 && b > a * (1.0 + threshold);
    if (delta.regression) diff.regressed = true;
    diff.rows.push_back(std::move(delta));
  };

  for (const obs::SpanStat& stat : before.spans) {
    for (const obs::SpanStat& other : after.spans) {
      if (other.name == stat.name) {
        compare(stat.name, "span", static_cast<double>(stat.total_dur),
                static_cast<double>(other.total_dur));
        break;
      }
    }
  }
  for (const auto& [name, value] : before.counters) {
    for (const auto& [other_name, other_value] : after.counters) {
      if (other_name == name) {
        compare(name, "counter", value, other_value);
        break;
      }
    }
  }
  std::stable_sort(diff.rows.begin(), diff.rows.end(),
                   [](const PerfDelta& a, const PerfDelta& b) {
                     if (a.regression != b.regression) return a.regression;
                     return a.name < b.name;
                   });
  return diff;
}

std::string render_perf_diff(const PerfDiff& diff) {
  std::ostringstream os;
  char buf[64];
  os << "perf diff (regression threshold +"
     << static_cast<int>(diff.threshold * 100.0) << "%"
     << (diff.spans_comparable ? "" : "; span stats missing on one side")
     << ")\n";
  os << "  " << diff.rows.size() << " comparable quantities\n";
  for (const PerfDelta& row : diff.rows) {
    std::snprintf(buf, sizeof buf, "%+.1f%%", (row.ratio - 1.0) * 100.0);
    os << "  " << (row.regression ? "REGRESSION " : "ok         ") << row.kind
       << ' ' << row.name << ": " << row.before << " -> " << row.after << " ("
       << buf << ")\n";
  }
  os << (diff.regressed ? "RESULT: regression above threshold\n"
                        : "RESULT: within threshold\n");
  return os.str();
}

}  // namespace drbw::report
