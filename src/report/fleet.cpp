#include "drbw/report/fleet.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>

#include "drbw/obs/sink.hpp"
#include "drbw/util/artifact.hpp"
#include "drbw/util/task_pool.hpp"

namespace drbw::report {

namespace fs = std::filesystem;

namespace {

/// Joins the scan root with a root-relative run dir ("." = the root itself).
std::string join_root(const std::string& root, const std::string& rel) {
  if (rel == "." || rel.empty()) return root;
  return root + "/" + rel;
}

/// Nearest-rank percentile over an ascending-sorted vector: the smallest
/// element with at least p of the population at or below it.
std::uint64_t nearest_rank(const std::vector<std::uint64_t>& sorted,
                           double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size());
  std::size_t index = static_cast<std::size_t>(rank);
  if (static_cast<double>(index) < rank) ++index;  // ceil
  if (index == 0) index = 1;
  return sorted[std::min(index, sorted.size()) - 1];
}

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Markdown table cells use '|' as the separator; manifests carry free text
/// (error messages) that must not break the row.
std::string md_cell(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '|' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

std::vector<std::string> discover_run_dirs(const std::string& root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    throw Error("fleet root '" + root + "' is not a directory",
                ErrorCode::kNotFound);
  }
  std::vector<std::string> dirs;
  const fs::path root_path(root);
  if (fs::exists(root_path / obs::kManifestFileName, ec)) {
    dirs.push_back(".");
  }
  for (fs::recursive_directory_iterator it(root_path, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().filename() != obs::kManifestFileName) continue;
    dirs.push_back(
        fs::relative(it->path().parent_path(), root_path, ec).generic_string());
  }
  std::sort(dirs.begin(), dirs.end());
  dirs.erase(std::unique(dirs.begin(), dirs.end()), dirs.end());
  return dirs;
}

FleetReport fleet_scan(const std::string& root, const FleetOptions& options) {
  FleetReport report;
  report.root = root;
  report.options = options;

  const std::vector<std::string> dirs = discover_run_dirs(root);
  if (dirs.empty()) {
    throw Error("no run dirs under '" + root + "' (no " +
                    std::string(obs::kManifestFileName) + " found)",
                ErrorCode::kNotFound);
  }
  report.dirs_scanned = dirs.size();

  ManifestData baseline;
  const bool scan_regressions = !options.baseline_path.empty();
  if (scan_regressions) baseline = load_manifest(options.baseline_path);

  // Loads are independent, so they fan out into indexed slots; everything
  // below aggregates in sorted-directory order, which keeps the report a
  // pure function of the corpus at any --jobs value.
  struct Slot {
    bool corrupt = false;
    std::string error;
    ManifestData manifest;
    bool serve_snapshot_ok = false;
    std::vector<FleetServeClient> serve_clients;
    bool drift_section = false;
    std::vector<FleetModelHealth> health;
  };
  std::vector<Slot> slots(dirs.size());
  util::TaskPool pool(options.jobs);
  pool.parallel_for(dirs.size(), [&](std::size_t i) {
    const std::string path =
        join_root(root, dirs[i]) + "/" + obs::kManifestFileName;
    try {
      slots[i].manifest = load_manifest(path);
    } catch (const Error& e) {
      slots[i].corrupt = true;
      slots[i].error = e.what();
      return;
    }
    if (slots[i].manifest.subcommand != "serve") return;
    // Per-client overload accounting lives in the run's serve snapshot, not
    // the manifest.  A missing or damaged snapshot is tallied, never fatal —
    // the report layer absorbs what the serve run could not persist.
    // (The kind/version literals mirror serve::kServeSnapshotVersion; the
    // report layer deliberately avoids a dependency on the serve headers.)
    try {
      const util::VersionedArtifact snapshot = util::read_versioned_artifact(
          join_root(root, dirs[i]) + "/serve_snapshot.json", "serve-snapshot",
          2, util::LoadPolicy{});
      const Json doc = Json::parse(snapshot.body);
      const Json* clients = doc.find("clients");
      if (clients != nullptr && clients->is_array()) {
        for (const Json& entry : clients->as_array()) {
          if (!entry.is_object()) continue;
          FleetServeClient row;
          row.dir = dirs[i];
          const auto u64 = [&](const char* key) -> std::uint64_t {
            const Json* node = entry.find(key);
            return node != nullptr && node->type() == Json::Type::kNumber
                       ? static_cast<std::uint64_t>(node->as_int())
                       : 0;
          };
          row.client = u64("client");
          row.shed = u64("shed");
          row.rejected = u64("rejected");
          row.dropped = u64("dropped");
          const Json* quarantined = entry.find("quarantined");
          row.quarantined = quarantined != nullptr &&
                            quarantined->type() == Json::Type::kBool &&
                            quarantined->as_bool();
          slots[i].serve_clients.push_back(std::move(row));
        }
        slots[i].serve_snapshot_ok = true;
      }
      // v2 snapshots add a drift section (per-client confidence + PSI
      // score); v1 snapshots and drift-unavailable runs simply lack it.
      const Json* drift = doc.find("drift");
      if (drift != nullptr && drift->is_object()) {
        slots[i].drift_section = true;
        const Json* rows = drift->find("clients");
        if (rows != nullptr && rows->is_array()) {
          for (const Json& entry : rows->as_array()) {
            if (!entry.is_object()) continue;
            FleetModelHealth h;
            h.dir = dirs[i];
            const auto num = [&](const char* key) -> double {
              const Json* node = entry.find(key);
              return node != nullptr && node->type() == Json::Type::kNumber
                         ? node->as_number()
                         : 0.0;
            };
            h.client = static_cast<std::uint64_t>(num("client"));
            h.confidence_p50 = num("confidence_p50");
            h.confidence_min = num("confidence_min");
            h.drift_score = num("score");
            const Json* suspected = entry.find("suspected");
            h.suspected = suspected != nullptr &&
                          suspected->type() == Json::Type::kBool &&
                          suspected->as_bool();
            slots[i].health.push_back(std::move(h));
          }
        }
      }
    } catch (const Error&) {
      // tallied as serve_snapshots_missing below
    }
  });

  std::map<std::string, std::size_t> outcomes;
  std::map<std::string, std::size_t> subcommands;
  struct SpanAccum {
    std::uint64_t count = 0;
    std::vector<std::pair<std::uint64_t, std::string>> totals;  // (dur, dir)
  };
  std::map<std::string, SpanAccum> spans;
  std::map<std::string, std::uint64_t> fires;

  for (std::size_t i = 0; i < dirs.size(); ++i) {
    const Slot& slot = slots[i];
    if (slot.corrupt) {
      ++report.manifests_corrupt;
      report.corrupt.push_back(CorruptManifest{dirs[i], slot.error});
      continue;
    }
    const ManifestData& m = slot.manifest;
    const bool failed = m.status != "ok";
    if ((options.filter_status == "ok" && failed) ||
        (options.filter_status == "failed" && !failed)) {
      ++report.runs_filtered_out;
      continue;
    }
    FleetRun run;
    run.dir = dirs[i];
    run.subcommand = m.subcommand;
    run.status = m.status;
    run.error_code = m.error_code;
    run.exit_code = m.exit_code;
    run.records_quarantined = m.records_quarantined;
    report.runs.push_back(std::move(run));

    if (failed) {
      ++report.runs_failed;
      ++outcomes[m.error_code.empty() ? "error" : m.error_code];
    } else {
      ++report.runs_ok;
      ++outcomes["ok"];
    }
    ++subcommands[m.subcommand.empty() ? "?" : m.subcommand];
    for (const obs::SpanStat& stat : m.spans) {
      SpanAccum& accum = spans[stat.name];
      accum.count += stat.count;
      accum.totals.emplace_back(stat.total_dur, dirs[i]);
    }
    for (const auto& [site, count] : m.fault_fires) fires[site] += count;
    report.records_quarantined += m.records_quarantined;
    if (m.records_quarantined > 0) ++report.quarantine_runs;

    if (m.subcommand == "serve") {
      ++report.serve_runs;
      if (m.degraded) ++report.serve_degraded_runs;
      if (!slot.serve_snapshot_ok) ++report.serve_snapshots_missing;
      for (const FleetServeClient& client : slot.serve_clients) {
        report.serve_shed += client.shed;
        report.serve_rejected += client.rejected;
        report.serve_dropped += client.dropped;
        if (client.quarantined) ++report.serve_quarantined_clients;
        report.serve_clients.push_back(client);
      }
      if (m.drift == "suspected") ++report.drift_suspected_runs;
      if (m.drift == "unavailable") ++report.drift_unavailable_runs;
      if (slot.drift_section) ++report.model_health_runs;
      for (const FleetModelHealth& h : slot.health) {
        if (!report.has_model_health ||
            h.confidence_p50 < report.min_confidence) {
          report.min_confidence = h.confidence_p50;
          report.min_confidence_dir = h.dir;
          report.min_confidence_client = h.client;
        }
        if (!report.has_model_health || h.drift_score > report.max_drift) {
          report.max_drift = h.drift_score;
          report.max_drift_dir = h.dir;
          report.max_drift_client = h.client;
        }
        report.has_model_health = true;
        if (h.suspected) ++report.drift_suspected_clients;
        report.model_health.push_back(h);
      }
    }

    if (scan_regressions && !failed) {
      ++report.regression_scanned;
      const PerfDiff diff = perf_diff(baseline, m, options.threshold);
      if (diff.regressed) {
        FleetRegression reg;
        reg.dir = dirs[i];
        for (const PerfDelta& row : diff.rows) {
          if (row.regression) reg.rows.push_back(row);
        }
        report.regressions.push_back(std::move(reg));
        report.regressed = true;
      }
    }
  }

  for (const auto& [name, count] : outcomes) report.outcomes.emplace_back(name, count);
  for (const auto& [name, count] : subcommands) {
    report.subcommands.emplace_back(name, count);
  }
  for (auto& [name, accum] : spans) {
    FleetSpanStat stat;
    stat.name = name;
    stat.runs = accum.totals.size();
    stat.count = accum.count;
    std::sort(accum.totals.begin(), accum.totals.end());
    std::vector<std::uint64_t> values;
    values.reserve(accum.totals.size());
    for (const auto& [dur, dir] : accum.totals) values.push_back(dur);
    stat.p50 = nearest_rank(values, 0.50);
    stat.p95 = nearest_rank(values, 0.95);
    stat.max = accum.totals.back().first;
    stat.max_dir = accum.totals.back().second;
    report.spans.push_back(std::move(stat));
  }
  for (const auto& [site, count] : fires) report.fault_fires.emplace_back(site, count);
  return report;
}

std::string render_fleet_markdown(const FleetReport& report) {
  std::ostringstream os;
  os << "# DR-BW fleet report\n\n";
  os << "root `" << report.root << "`: " << report.dirs_scanned
     << " run dir(s) scanned — " << report.runs_ok << " ok, "
     << report.runs_failed << " failed, " << report.manifests_corrupt
     << " corrupt manifest(s) quarantined";
  if (!report.options.filter_status.empty()) {
    os << "; filter status=" << report.options.filter_status << " dropped "
       << report.runs_filtered_out << " run(s)";
  }
  os << "\n\n## Outcomes\n\n| outcome | runs |\n|---|---:|\n";
  for (const auto& [name, count] : report.outcomes) {
    os << "| " << md_cell(name) << " | " << count << " |\n";
  }
  os << "\n## Subcommands\n\n| subcommand | runs |\n|---|---:|\n";
  for (const auto& [name, count] : report.subcommands) {
    os << "| " << md_cell(name) << " | " << count << " |\n";
  }
  if (!report.spans.empty()) {
    os << "\n## Span time (per-run total durations)\n\n"
          "| span | runs | count | p50 | p95 | max | slowest run |\n"
          "|---|---:|---:|---:|---:|---:|---|\n";
    for (const FleetSpanStat& s : report.spans) {
      os << "| " << md_cell(s.name) << " | " << s.runs << " | " << s.count
         << " | " << s.p50 << " | " << s.p95 << " | " << s.max << " | "
         << md_cell(s.max_dir) << " |\n";
    }
  }
  if (!report.fault_fires.empty()) {
    os << "\n## Fault fires\n\n| site | fires |\n|---|---:|\n";
    for (const auto& [site, count] : report.fault_fires) {
      os << "| " << md_cell(site) << " | " << count << " |\n";
    }
  }
  if (report.records_quarantined > 0) {
    os << "\n## Quarantine\n\n" << report.records_quarantined
       << " record(s) quarantined across " << report.quarantine_runs
       << " run(s)\n";
  }
  if (report.serve_runs > 0) {
    os << "\n## Serve\n\n" << report.serve_runs << " serve run(s): "
       << report.serve_degraded_runs << " degraded, "
       << report.serve_quarantined_clients << " client(s) quarantined, "
       << report.serve_shed << " sample(s) shed, " << report.serve_rejected
       << " rejected, " << report.serve_dropped << " dropped";
    if (report.serve_snapshots_missing > 0) {
      os << "; " << report.serve_snapshots_missing
         << " run(s) without a loadable serve snapshot";
    }
    os << '\n';
    if (!report.serve_clients.empty()) {
      os << "\n| run | client | shed | rejected | dropped | quarantined |\n"
            "|---|---:|---:|---:|---:|---|\n";
      for (const FleetServeClient& c : report.serve_clients) {
        os << "| " << md_cell(c.dir) << " | " << c.client << " | " << c.shed
           << " | " << c.rejected << " | " << c.dropped << " | "
           << (c.quarantined ? "yes" : "no") << " |\n";
      }
    }
  }
  if (report.model_health_runs > 0 || report.drift_suspected_runs > 0 ||
      report.drift_unavailable_runs > 0) {
    os << "\n## Model health\n\n" << report.model_health_runs
       << " serve run(s) with drift telemetry: " << report.drift_suspected_runs
       << " drift-suspected run(s) (" << report.drift_suspected_clients
       << " client(s) flagged), " << report.drift_unavailable_runs
       << " without a usable baseline, " << report.serve_degraded_runs
       << " degraded\n";
    if (report.has_model_health) {
      os << "\nlowest confidence p50 " << fmt_double(report.min_confidence)
         << " (run " << md_cell(report.min_confidence_dir) << ", client "
         << report.min_confidence_client << "); max drift "
         << fmt_double(report.max_drift) << " (run "
         << md_cell(report.max_drift_dir) << ", client "
         << report.max_drift_client << ")\n";
    }
    if (!report.model_health.empty()) {
      os << "\n| run | client | confidence p50 | confidence min | drift | "
            "suspected |\n|---|---:|---:|---:|---:|---|\n";
      for (const FleetModelHealth& h : report.model_health) {
        os << "| " << md_cell(h.dir) << " | " << h.client << " | "
           << fmt_double(h.confidence_p50) << " | "
           << fmt_double(h.confidence_min) << " | " << fmt_double(h.drift_score)
           << " | " << (h.suspected ? "yes" : "no") << " |\n";
      }
    }
  }
  if (!report.options.baseline_path.empty()) {
    os << "\n## Regression scan\n\nbaseline `" << report.options.baseline_path
       << "`, threshold +"
       << static_cast<int>(report.options.threshold * 100.0) << "%, "
       << report.regression_scanned << " passing run(s) compared\n";
    if (report.regressions.empty()) {
      os << "\nno regressions\n";
    } else {
      os << "\n| run | kind | name | baseline | run | delta |\n"
            "|---|---|---|---:|---:|---:|\n";
      for (const FleetRegression& reg : report.regressions) {
        for (const PerfDelta& row : reg.rows) {
          char delta[32];
          std::snprintf(delta, sizeof delta, "%+.1f%%",
                        (row.ratio - 1.0) * 100.0);
          os << "| " << md_cell(reg.dir) << " | " << row.kind << " | "
             << md_cell(row.name) << " | " << fmt_double(row.before) << " | "
             << fmt_double(row.after) << " | " << delta << " |\n";
        }
      }
    }
  }
  os << "\n## Runs\n\n| run | subcommand | status | error | exit |\n"
        "|---|---|---|---|---:|\n";
  const std::size_t cap =
      report.options.top == 0
          ? report.runs.size()
          : std::min(report.options.top, report.runs.size());
  for (std::size_t i = 0; i < cap; ++i) {
    const FleetRun& run = report.runs[i];
    os << "| " << md_cell(run.dir) << " | " << md_cell(run.subcommand)
       << " | " << run.status << " | " << md_cell(run.error_code) << " | "
       << run.exit_code << " |\n";
  }
  if (cap < report.runs.size()) {
    os << "\n…and " << report.runs.size() - cap
       << " more (raise --top to list them)\n";
  }
  if (!report.corrupt.empty()) {
    os << "\n## Corrupt manifests\n\n| run | error |\n|---|---|\n";
    for (const CorruptManifest& c : report.corrupt) {
      os << "| " << md_cell(c.dir) << " | " << md_cell(c.error) << " |\n";
    }
  }
  return os.str();
}

std::string render_fleet_json(const FleetReport& report) {
  Json golden = JsonObject{};
  Json runs = JsonObject{};
  runs.set("scanned", report.dirs_scanned);
  runs.set("ok", report.runs_ok);
  runs.set("failed", report.runs_failed);
  runs.set("corrupt_manifests", report.manifests_corrupt);
  runs.set("filtered_out", report.runs_filtered_out);
  golden.set("runs", std::move(runs));

  Json outcomes = JsonObject{};
  for (const auto& [name, count] : report.outcomes) outcomes.set(name, count);
  golden.set("outcomes", std::move(outcomes));

  Json subcommands = JsonObject{};
  for (const auto& [name, count] : report.subcommands) {
    subcommands.set(name, count);
  }
  golden.set("subcommands", std::move(subcommands));

  Json spans = JsonArray{};
  for (const FleetSpanStat& s : report.spans) {
    Json entry = JsonObject{};
    entry.set("name", s.name);
    entry.set("runs", s.runs);
    entry.set("count", s.count);
    entry.set("p50", s.p50);
    entry.set("p95", s.p95);
    entry.set("max", s.max);
    entry.set("max_run", s.max_dir);
    spans.push_back(std::move(entry));
  }
  golden.set("spans", std::move(spans));

  Json fires = JsonObject{};
  for (const auto& [site, count] : report.fault_fires) fires.set(site, count);
  golden.set("fault_fires", std::move(fires));

  Json quarantine = JsonObject{};
  quarantine.set("records", report.records_quarantined);
  quarantine.set("runs", report.quarantine_runs);
  golden.set("quarantine", std::move(quarantine));

  if (report.serve_runs > 0) {
    Json serve = JsonObject{};
    serve.set("runs", report.serve_runs);
    serve.set("degraded_runs", report.serve_degraded_runs);
    serve.set("snapshots_missing", report.serve_snapshots_missing);
    serve.set("shed", report.serve_shed);
    serve.set("rejected", report.serve_rejected);
    serve.set("dropped", report.serve_dropped);
    serve.set("quarantined_clients", report.serve_quarantined_clients);
    Json clients = JsonArray{};
    for (const FleetServeClient& c : report.serve_clients) {
      Json entry = JsonObject{};
      entry.set("run", c.dir);
      entry.set("client", c.client);
      entry.set("shed", c.shed);
      entry.set("rejected", c.rejected);
      entry.set("dropped", c.dropped);
      entry.set("quarantined", c.quarantined);
      clients.push_back(std::move(entry));
    }
    serve.set("clients", std::move(clients));
    golden.set("serve", std::move(serve));
  }

  if (report.model_health_runs > 0 || report.drift_suspected_runs > 0 ||
      report.drift_unavailable_runs > 0) {
    Json health = JsonObject{};
    health.set("runs", report.model_health_runs);
    health.set("drift_suspected_runs", report.drift_suspected_runs);
    health.set("drift_suspected_clients", report.drift_suspected_clients);
    health.set("drift_unavailable_runs", report.drift_unavailable_runs);
    health.set("degraded_runs", report.serve_degraded_runs);
    if (report.has_model_health) {
      Json lowest = JsonObject{};
      lowest.set("run", report.min_confidence_dir);
      lowest.set("client", report.min_confidence_client);
      lowest.set("confidence_p50", report.min_confidence);
      health.set("lowest_confidence", std::move(lowest));
      Json worst = JsonObject{};
      worst.set("run", report.max_drift_dir);
      worst.set("client", report.max_drift_client);
      worst.set("score", report.max_drift);
      health.set("max_drift", std::move(worst));
    }
    Json rows = JsonArray{};
    for (const FleetModelHealth& h : report.model_health) {
      Json entry = JsonObject{};
      entry.set("run", h.dir);
      entry.set("client", h.client);
      entry.set("confidence_p50", h.confidence_p50);
      entry.set("confidence_min", h.confidence_min);
      entry.set("score", h.drift_score);
      entry.set("suspected", h.suspected);
      rows.push_back(std::move(entry));
    }
    health.set("clients", std::move(rows));
    golden.set("model_health", std::move(health));
  }

  Json regressions = JsonArray{};
  for (const FleetRegression& reg : report.regressions) {
    Json entry = JsonObject{};
    entry.set("run", reg.dir);
    Json rows = JsonArray{};
    for (const PerfDelta& row : reg.rows) {
      Json cell = JsonObject{};
      cell.set("name", row.name);
      cell.set("kind", row.kind);
      cell.set("baseline", row.before);
      cell.set("run", row.after);
      cell.set("ratio", row.ratio);
      rows.push_back(std::move(cell));
    }
    entry.set("rows", std::move(rows));
    regressions.push_back(std::move(entry));
  }
  golden.set("regressions", std::move(regressions));
  golden.set("regression_scanned", report.regression_scanned);
  golden.set("regressed", report.regressed);

  Json run_list = JsonArray{};
  const std::size_t cap =
      report.options.top == 0
          ? report.runs.size()
          : std::min(report.options.top, report.runs.size());
  for (std::size_t i = 0; i < cap; ++i) {
    const FleetRun& run = report.runs[i];
    Json entry = JsonObject{};
    entry.set("dir", run.dir);
    entry.set("subcommand", run.subcommand);
    entry.set("status", run.status);
    entry.set("error", run.error_code);
    entry.set("exit", run.exit_code);
    entry.set("records_quarantined", run.records_quarantined);
    run_list.push_back(std::move(entry));
  }
  golden.set("run_list", std::move(run_list));
  golden.set("runs_listed", cap);
  golden.set("runs_omitted", report.runs.size() - cap);

  Json corrupt = JsonArray{};
  for (const CorruptManifest& c : report.corrupt) {
    Json entry = JsonObject{};
    entry.set("dir", c.dir);
    entry.set("error", c.error);
    corrupt.push_back(std::move(entry));
  }
  golden.set("corrupt", std::move(corrupt));

  // The invocation echo.  --jobs is deliberately absent: the aggregation is
  // slot-indexed, so the whole artifact is byte-identical at any value —
  // a stronger guarantee than the manifest's jobs-line-only delta.
  Json context = JsonObject{};
  context.set("root", report.root);
  context.set("baseline", report.options.baseline_path);
  context.set("threshold", report.options.threshold);
  context.set("filter",
              report.options.filter_status.empty()
                  ? std::string()
                  : "status=" + report.options.filter_status);
  context.set("top", report.options.top);

  Json doc = JsonObject{};
  doc.set("golden", std::move(golden));
  doc.set("context", std::move(context));
  return doc.dump(2) + "\n";
}

void write_fleet_json(const FleetReport& report, const std::string& path) {
  const std::string body = render_fleet_json(report);
  std::string content =
      obs::format_artifact_header("fleet", kFleetReportVersion, body);
  content += '\n';
  content += body;
  obs::atomic_write_file(path, content);
}

void write_fleet_text(const std::string& path, const std::string& content) {
  obs::atomic_write_file(path, content);
}

std::vector<obs::FlameSpan> flame_spans(
    const std::vector<FlightRecord>& records) {
  std::vector<obs::FlameSpan> spans;
  for (const FlightRecord& record : records) {
    if (record.tag != "span") continue;
    obs::FlameSpan span;
    span.name = record.detail;
    span.track = record.track;
    span.start = record.seq;
    span.dur = record.value;
    spans.push_back(std::move(span));
  }
  return spans;
}

std::vector<obs::FlameSpan> flame_spans_from_trace(const Json& trace) {
  const Json* events = trace.is_object() ? trace.find("traceEvents") : nullptr;
  if (events == nullptr || !events->is_array()) {
    throw Error("not a trace_event document (no traceEvents array)",
                ErrorCode::kParse);
  }
  std::vector<obs::FlameSpan> spans;
  for (const Json& event : events->as_array()) {
    if (!event.is_object()) continue;
    const Json* phase = event.find("ph");
    if (phase == nullptr || phase->type() != Json::Type::kString ||
        phase->as_string() != "X") {
      continue;
    }
    const Json* name = event.find("name");
    const Json* tid = event.find("tid");
    const Json* ts = event.find("ts");
    const Json* dur = event.find("dur");
    obs::FlameSpan span;
    span.name = name != nullptr && name->type() == Json::Type::kString
                    ? name->as_string()
                    : std::string("?");
    span.track = tid != nullptr && tid->type() == Json::Type::kNumber
                     ? static_cast<std::uint64_t>(tid->as_int())
                     : 0;
    span.start = ts != nullptr && ts->type() == Json::Type::kNumber
                     ? static_cast<std::uint64_t>(ts->as_int())
                     : 0;
    span.dur = dur != nullptr && dur->type() == Json::Type::kNumber
                   ? static_cast<std::uint64_t>(dur->as_int())
                   : 0;
    spans.push_back(std::move(span));
  }
  return spans;
}

bool fold_run_dir(const std::string& run_dir, obs::FlameFold& fold) {
  const std::string path =
      run_dir + "/" + std::string(obs::kFlightFileName);
  std::error_code ec;
  if (!fs::exists(path, ec)) return false;
  std::vector<FlightRecord> records;
  try {
    records = load_flight_dump(path);
  } catch (const Error&) {
    return false;  // a corrupt flight dump never sinks the fleet merge
  }
  fold.add(flame_spans(records));
  return true;
}

}  // namespace drbw::report
