#include "drbw/workloads/mini.hpp"

namespace drbw::workloads {

namespace {

ProxySpec vector_op(std::string name, int vectors, double compute_cpa,
                    std::uint64_t vector_bytes, bool master_alloc) {
  ProxySpec spec;
  spec.name = std::move(name);
  spec.suite = "mini";
  spec.inputs = {{"tuned", 1.0}};
  spec.master_alloc = master_alloc;
  spec.base_accesses = 6'000'000;
  spec.compute_cpa = compute_cpa;

  PhaseSpec loop;
  loop.name = "parallel-for";
  loop.accesses_fraction = 1.0;
  for (int v = 0; v < vectors; ++v) {
    const std::string site =
        spec.name + ".c:" + std::to_string(20 + v) + " vec" + std::to_string(v);
    spec.arrays.push_back(ArrayDecl{site, vector_bytes, ArrayRole::kPartitioned});
    loop.uses.push_back(ArrayUse{site, 1.0 / vectors, sim::Pattern::kSequential,
                                 false, 8, 8, 1});
  }
  spec.phases.push_back(std::move(loop));
  return spec;
}

}  // namespace

ProxySpec sumv_spec(std::uint64_t vector_bytes, bool master_alloc) {
  return vector_op("sumv", 1, 1.0, vector_bytes, master_alloc);
}

ProxySpec dotv_spec(std::uint64_t vector_bytes, bool master_alloc) {
  // Two streams halve the per-array intensity but double the footprint.
  return vector_op("dotv", 2, 1.2, vector_bytes, master_alloc);
}

ProxySpec countv_spec(std::uint64_t vector_bytes, bool master_alloc) {
  // A compare + conditional increment per element: more compute per access.
  return vector_op("countv", 1, 1.7, vector_bytes, master_alloc);
}

ProxySpec bandit_spec(std::uint32_t streams, topology::NodeId memory_node,
                      std::uint64_t buffer_bytes) {
  DRBW_CHECK_MSG(streams >= 1, "bandit needs at least one stream");
  ProxySpec spec;
  spec.name = "bandit";
  spec.suite = "mini";
  spec.inputs = {{"tuned", 1.0}};
  spec.master_alloc = true;  // huge pages explicitly placed
  // Every access is a serialized DRAM miss, so far fewer accesses are
  // needed per run than for the cached vector ops.
  spec.base_accesses = 900'000;
  spec.compute_cpa = 1.0;

  spec.arrays.push_back(ArrayDecl{"bandit.c:52 stream_buf", buffer_bytes,
                                  ArrayRole::kPartitioned, memory_node});
  PhaseSpec chase;
  chase.name = "chase";
  chase.accesses_fraction = 1.0;
  ArrayUse use;
  use.site = "bandit.c:52 stream_buf";
  use.weight = 1.0;
  use.pattern = sim::Pattern::kPointerChaseConflict;
  use.streams = streams;
  chase.uses.push_back(use);
  spec.phases.push_back(std::move(chase));
  return spec;
}

std::unique_ptr<Benchmark> make_mini(const ProxySpec& spec) {
  return std::make_unique<ProxyBenchmark>(spec);
}

}  // namespace drbw::workloads
