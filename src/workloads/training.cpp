#include "drbw/workloads/training.hpp"

#include <algorithm>
#include <tuple>

#include "drbw/core/profiler.hpp"
#include "drbw/util/task_pool.hpp"
#include "drbw/workloads/mini.hpp"

namespace drbw::workloads {

namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

/// One planned mini-program run: everything run_instance needs, enumerated
/// up front so the runs themselves can execute in any order.  The seed is
/// assigned during (serial) enumeration, which is what makes the generated
/// set independent of the worker count.
struct PlannedRun {
  ProxySpec spec;
  RunConfig config;
  bool rmc = false;
  std::uint64_t seed = 0;
  std::string description;
};

/// Runs one mini-program spec and turns it into a training instance.
TrainingInstance run_instance(const topology::Machine& machine,
                              const ProxySpec& spec, const RunConfig& config,
                              bool rmc, const TrainingOptions& options,
                              std::uint64_t run_seed,
                              const std::string& description) {
  mem::AddressSpace space(machine);
  ProxyBenchmark bench(spec);
  const BuiltWorkload built =
      bench.build(space, machine, config, PlacementMode::kOriginal, 0);
  sim::EngineConfig engine = options.engine;
  engine.seed = run_seed;
  const sim::RunResult run = execute(machine, space, built, engine);

  core::AddressSpaceLocator locator(space);
  core::Profiler profiler(machine, locator);
  const core::ProfileResult profile = profiler.profile(run);

  TrainingInstance instance;
  instance.program = spec.name;
  instance.config = description;
  instance.rmc = rmc;
  // Each run contributes the features of its most heavily loaded remote
  // channel — the channel a manual "rmc" judgment refers to.  Training on
  // the same per-channel scope the detector uses (§IV-B) keeps feature
  // magnitudes comparable between training and deployment.
  const auto channels = features::extract_channels(profile, machine);
  const features::ChannelFeatures* best = nullptr;
  for (const features::ChannelFeatures& cf : channels) {
    if (best == nullptr || cf.features.values[5] > best->features.values[5] ||
        (cf.features.values[5] == best->features.values[5] &&
         cf.features.scope_samples > best->features.scope_samples)) {
      best = &cf;
    }
  }
  DRBW_CHECK_MSG(best != nullptr,
                 "run '" << spec.name << ' ' << description
                         << "' produced no per-channel features — the machine "
                            "reports no channels to extract from");
  instance.features = best->features;
  if (options.with_candidates) {
    instance.candidates = features::extract_candidates(profile);
  }
  for (int idx = 0; idx < machine.num_channels(); ++idx) {
    if (machine.channel_at(idx).is_local()) continue;
    instance.peak_remote_utilization =
        std::max(instance.peak_remote_utilization,
                 run.channels[static_cast<std::size_t>(idx)].peak_utilization);
  }
  return instance;
}

using SpecFactory = ProxySpec (*)(std::uint64_t, bool);

void add_vector_runs(std::vector<PlannedRun>& out, SpecFactory factory,
                     bool compute_bound, std::uint64_t& seed) {
  // 24 "good" runs in two families:
  //  * 16 parallel-first-touch runs, including T8-N1 at the largest size,
  //    which saturates node 0's *local* memory controller — loud latency,
  //    zero remote contention (the consumption-vs-contention confound);
  //  * 8 master-allocated runs with only one or two remote threads per
  //    link: real remote traffic, mildly elevated latency, but no
  //    saturation.  These land near the class boundary, as the paper's
  //    tuned-but-manually-examined configurations did.
  const std::uint64_t good_sizes[] = {16 * kMiB, 256 * kMiB};
  const RunConfig good_local_configs[] = {{1, 1}, {2, 1}, {4, 1}, {8, 1},
                                          {4, 2}, {8, 2}, {12, 3}, {16, 4}};
  for (const std::uint64_t size : good_sizes) {
    for (const RunConfig& config : good_local_configs) {
      out.push_back(PlannedRun{
          factory(size, /*master_alloc=*/false), config,
          /*rmc=*/false, ++seed,
          config.name() + " " + std::to_string(size / kMiB) + "MiB local"});
    }
  }
  // For the compute-bound program (countv), {12,4} runs three remote
  // streamers per link at ~88% utilization — judged good on inspection, but
  // with latencies that overlap countv's own most marginal rmc runs.  The
  // memory-bound programs saturate outright at three streamers, so they get
  // the lighter {6,3} instead.  This boundary population is what keeps the
  // learned tree honest (and mirrors the judgment calls behind the paper's
  // manually labelled 192 runs).
  const RunConfig good_master_configs[] = {
      {2, 2}, {4, 4}, {8, 4}, compute_bound ? RunConfig{12, 4} : RunConfig{6, 3}};
  for (const std::uint64_t size : good_sizes) {
    for (const RunConfig& config : good_master_configs) {
      out.push_back(PlannedRun{
          factory(size, /*master_alloc=*/true), config,
          /*rmc=*/false, ++seed,
          config.name() + " " + std::to_string(size / kMiB) + "MiB master-light"});
    }
  }
  // 24 "rmc" runs: master-thread allocation homes the vectors on node 0
  // while threads on the other nodes stream them — the channels into node 0
  // saturate.
  // The {8,2} configuration sits right at the saturation knee: four remote
  // streamers hold the reverse link at its Little's-law-bounded latency —
  // contended, but only ~2x over idle.  Together with countv's {12,4}
  // "good" runs just below it, this reproduces the boundary noise the
  // paper's manual labelling carried (its own CV loses 5 of 192 instances,
  // Table III).
  const std::uint64_t rmc_sizes[] = {256 * kMiB, 512 * kMiB, 1024 * kMiB};
  const RunConfig rmc_configs[] = {{8, 2},  {16, 2}, {32, 2}, {16, 4},
                                   {24, 4}, {32, 4}, {64, 4}, {24, 3}};
  for (const std::uint64_t size : rmc_sizes) {
    for (const RunConfig& config : rmc_configs) {
      out.push_back(PlannedRun{
          factory(size, /*master_alloc=*/true), config,
          /*rmc=*/true, ++seed,
          config.name() + " " + std::to_string(size / kMiB) + "MiB master"});
    }
  }
}

void add_bandit_runs(std::vector<PlannedRun>& out, std::uint64_t& seed) {
  // 48 "good" runs (Table II lists no rmc bandit runs): stream counts and
  // co-running instance counts tuned to exercise different bandwidth
  // demand levels while staying clear of saturation; buffers placed on the
  // local node or an explicit remote node.
  const std::uint32_t stream_counts[] = {1, 2, 4, 8};
  const int instance_counts[] = {1, 2};
  const topology::NodeId homes[] = {0, 1};
  const std::uint64_t sizes[] = {64 * kMiB, 128 * kMiB, 256 * kMiB};
  for (const std::uint64_t size : sizes) {
    for (const std::uint32_t streams : stream_counts) {
      for (const int instances : instance_counts) {
        for (const topology::NodeId home : homes) {
          const RunConfig config{instances, 1};  // instances co-run on node 0
          out.push_back(PlannedRun{
              bandit_spec(streams, home, size), config,
              /*rmc=*/false, ++seed,
              config.name() + " s" + std::to_string(streams) + " " +
                  (home == 0 ? "local" : "remote") + " " +
                  std::to_string(size / kMiB) + "MiB"});
        }
      }
    }
  }
}

}  // namespace

TrainingSet generate_training_set(const topology::Machine& machine,
                                  const TrainingOptions& options) {
  // Enumerate all runs serially — the Table II composition and per-run
  // seeds never depend on the worker count — then execute them on the
  // pool.  Each run writes only its own slot, so the resulting set is
  // bitwise identical for any `jobs` value.
  std::vector<PlannedRun> planned;
  std::uint64_t seed = options.seed;
  add_vector_runs(planned, sumv_spec, /*compute_bound=*/false, seed);
  add_vector_runs(planned, dotv_spec, /*compute_bound=*/false, seed);
  add_vector_runs(planned, countv_spec, /*compute_bound=*/true, seed);
  add_bandit_runs(planned, seed);

  TrainingSet set;
  set.instances.resize(planned.size());
  util::TaskPool pool(options.jobs);
  pool.parallel_for(planned.size(), [&](std::size_t i) {
    const PlannedRun& run = planned[i];
    set.instances[i] = run_instance(machine, run.spec, run.config, run.rmc,
                                    options, run.seed, run.description);
  });
  return set;
}

ml::Dataset TrainingSet::dataset() const {
  ml::Dataset data(std::vector<std::string>(
      features::selected_feature_names().begin(),
      features::selected_feature_names().end()));
  for (const TrainingInstance& inst : instances) {
    data.add(inst.features.as_row(),
             inst.rmc ? ml::Label::kRmc : ml::Label::kGood,
             inst.program + " " + inst.config);
  }
  return data;
}

std::vector<features::LabelledRun> TrainingSet::labelled_runs() const {
  std::vector<features::LabelledRun> runs;
  for (const TrainingInstance& inst : instances) {
    DRBW_CHECK_MSG(!inst.candidates.empty(),
                   "training set generated without candidates; set "
                   "TrainingOptions::with_candidates");
    runs.push_back(features::LabelledRun{inst.program, inst.rmc, inst.candidates});
  }
  return runs;
}

std::vector<std::tuple<std::string, int, int>> TrainingSet::composition() const {
  std::vector<std::tuple<std::string, int, int>> rows;
  for (const TrainingInstance& inst : instances) {
    auto it = std::find_if(rows.begin(), rows.end(), [&](const auto& r) {
      return std::get<0>(r) == inst.program;
    });
    if (it == rows.end()) {
      rows.emplace_back(inst.program, 0, 0);
      it = rows.end() - 1;
    }
    (inst.rmc ? std::get<2>(*it) : std::get<1>(*it))++;
  }
  return rows;
}

ml::TreeParams default_tree_params() {
  // A Fig. 3-sized tree: two levels are enough to express "many remote
  // samples at high latency"; deeper trees only memorize the handful of
  // deliberately ambiguous boundary runs and lose cross-validation accuracy.
  ml::TreeParams params;
  params.max_depth = 2;
  params.min_samples_leaf = 1;
  params.min_samples_split = 3;
  return params;
}

ml::Classifier train_default_classifier(const topology::Machine& machine,
                                        std::uint64_t seed, int jobs) {
  TrainingOptions options;
  options.seed = seed;
  options.jobs = jobs;
  const TrainingSet set = generate_training_set(machine, options);
  return ml::Classifier::train(set.dataset(), default_tree_params());
}

}  // namespace drbw::workloads
