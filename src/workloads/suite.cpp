#include "drbw/workloads/suite.hpp"

#include <algorithm>

#include "drbw/util/strings.hpp"

namespace drbw::workloads {

namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

ArrayUse use_seq(std::string site, double w, bool write = false) {
  ArrayUse u;
  u.site = std::move(site);
  u.weight = w;
  u.pattern = sim::Pattern::kSequential;
  u.write = write;
  return u;
}

ArrayUse use_rand(std::string site, double w) {
  ArrayUse u;
  u.site = std::move(site);
  u.weight = w;
  u.pattern = sim::Pattern::kRandom;
  return u;
}

ArrayUse use_strided(std::string site, double w, std::uint32_t stride) {
  ArrayUse u;
  u.site = std::move(site);
  u.weight = w;
  u.pattern = sim::Pattern::kStrided;
  u.stride_bytes = stride;
  return u;
}

PhaseSpec single_phase(std::vector<ArrayUse> uses, std::string name = "main") {
  PhaseSpec p;
  p.name = std::move(name);
  p.uses = std::move(uses);
  return p;
}

}  // namespace

// ---------------------------------------------------------------- PARSEC --

ProxySpec swaptions_spec() {
  // Monte-Carlo pricing: each thread simulates its own swaptions over a
  // private HJM path matrix — compute-bound, parallel-initialized.
  ProxySpec s;
  s.name = "swaptions";
  s.suite = "PARSEC";
  s.inputs = {{"simSmall", 0.25}, {"simMedium", 0.5}, {"simLarge", 1.0},
              {"native", 2.0}};
  s.master_alloc = false;
  s.compute_cpa = 5.0;
  s.base_accesses = 20'000'000;
  s.arrays = {{"HJM_Securities.cpp:70 ppdHJMPath", 24 * kMiB}};
  s.phases = {single_phase({use_seq("HJM_Securities.cpp:70 ppdHJMPath", 1.0)},
                           "simulate")};
  return s;
}

ProxySpec blackscholes_spec() {
  // Option pricing sweep: big parallel-initialized buffer streamed locally.
  // `buffer` carries the highest CF in the paper's §VIII-G study — lots of
  // consumption, no contention.
  ProxySpec s;
  s.name = "blackscholes";
  s.suite = "PARSEC";
  s.inputs = {{"simSmall", 0.2}, {"simMedium", 0.5}, {"simLarge", 1.0},
              {"native", 2.5}};
  s.master_alloc = false;
  s.compute_cpa = 2.5;
  s.base_accesses = 30'000'000;
  s.arrays = {{"blackscholes.c:310 buffer", 128 * kMiB},
              {"blackscholes.c:330 prices", 48 * kMiB}};
  s.phases = {single_phase({use_seq("blackscholes.c:310 buffer", 0.75),
                            use_seq("blackscholes.c:330 prices", 0.25, true)},
                           "price")};
  return s;
}

ProxySpec bodytrack_spec() {
  // Particle filter: a small shared image model plus per-thread particles.
  ProxySpec s;
  s.name = "bodytrack";
  s.suite = "PARSEC";
  s.inputs = {{"simLarge", 1.0}, {"native", 2.0}};
  s.master_alloc = false;
  s.compute_cpa = 2.0;
  s.base_accesses = 24'000'000;
  s.arrays = {{"TrackingModel.cpp:184 mImage", 256 * 1024, ArrayRole::kShared},
              {"ParticleFilter.h:48 particles", 8 * kMiB}};
  s.phases = {single_phase({use_rand("TrackingModel.cpp:184 mImage", 0.15),
                            use_seq("ParticleFilter.h:48 particles", 0.85)},
                           "track")};
  return s;
}

ProxySpec freqmine_spec() {
  // FP-growth: each thread mines its own subtree pool.
  ProxySpec s;
  s.name = "freqmine";
  s.suite = "PARSEC";
  s.inputs = {{"simSmall", 0.25}, {"simMedium", 0.5}, {"simLarge", 1.0},
              {"native", 2.0}};
  s.master_alloc = false;
  s.compute_cpa = 2.0;
  s.base_accesses = 24'000'000;
  s.arrays = {{"fp_tree.cpp:211 fp_node_pool", 96 * kMiB},
              {"fp_tree.cpp:230 header_table", 16 * kMiB}};
  s.phases = {single_phase({use_rand("fp_tree.cpp:211 fp_node_pool", 0.8),
                            use_seq("fp_tree.cpp:230 header_table", 0.2)},
                           "mine")};
  return s;
}

ProxySpec ferret_spec() {
  // Similarity-search pipeline: private image chunks + a small shared index.
  ProxySpec s;
  s.name = "ferret";
  s.suite = "PARSEC";
  s.inputs = {{"simSmall", 0.25}, {"simMedium", 0.5}, {"simLarge", 1.0},
              {"native", 2.0}};
  s.master_alloc = false;
  s.compute_cpa = 2.5;
  s.base_accesses = 24'000'000;
  s.arrays = {{"ferret-pipeline.c:88 image_pool", 8 * kMiB},
              {"lsh_index.c:132 hash_tables", 256 * 1024, ArrayRole::kShared}};
  s.phases = {single_phase({use_seq("ferret-pipeline.c:88 image_pool", 0.85),
                            use_rand("lsh_index.c:132 hash_tables", 0.15)},
                           "query")};
  return s;
}

ProxySpec fluidanimate_spec() {
  // SPH fluid: co-located cell grid plus a modest boundary-cell structure
  // touched by every thread.  The boundary traffic is spread evenly by
  // parallel first-touch, so interleaving cannot improve it — but at the
  // heaviest configurations its latency rises enough to trip the detector
  // (the paper records 4 false positives here, Table V).
  ProxySpec s;
  s.name = "fluidanimate";
  s.suite = "PARSEC";
  s.inputs = {{"simSmall", 0.15}, {"simMedium", 0.3}, {"simLarge", 0.6},
              {"native", 1.2}};
  s.master_alloc = false;
  s.compute_cpa = 3.2;
  s.base_accesses = 28'000'000;
  s.arrays = {{"pthreads.cpp:134 cells", 96 * kMiB},
              {"pthreads.cpp:158 border_cells", 16 * kMiB, ArrayRole::kShared}};
  s.phases = {single_phase({use_seq("pthreads.cpp:134 cells", 0.975),
                            use_rand("pthreads.cpp:158 border_cells", 0.025)},
                           "step")};
  return s;
}

ProxySpec x264_spec() {
  // Video encoding: strided motion-estimation walks over private frames.
  ProxySpec s;
  s.name = "x264";
  s.suite = "PARSEC";
  s.inputs = {{"simSmall", 0.25}, {"simMedium", 0.5}, {"simLarge", 1.0},
              {"native", 2.0}};
  s.master_alloc = false;
  s.compute_cpa = 2.0;
  s.base_accesses = 26'000'000;
  s.arrays = {{"encoder.c:501 frames", 120 * kMiB}};
  s.phases = {single_phase({use_strided("encoder.c:501 frames", 1.0, 16)},
                           "encode")};
  return s;
}

ProxySpec streamcluster_spec() {
  // Online clustering: the master thread allocates `block` (all input
  // points) on node 0, then every thread reads it randomly and repeatedly —
  // the canonical remote-bandwidth-contention victim (§VIII-C).
  ProxySpec s;
  s.name = "streamcluster";
  s.suite = "PARSEC";
  s.inputs = {{"simLarge", 0.5}, {"native", 1.0}};
  s.master_alloc = true;
  s.compute_cpa = 1.2;
  s.base_accesses = 20'000'000;
  s.arrays = {{"streamcluster.cpp:1739 block", 96 * kMiB, ArrayRole::kShared},
              {"streamcluster.cpp:985 point.p", 32 * kMiB, ArrayRole::kShared},
              {"streamcluster.cpp:1810 work_mem", 8 * kMiB}};
  s.phases = {single_phase({use_rand("streamcluster.cpp:1739 block", 0.85),
                            use_rand("streamcluster.cpp:985 point.p", 0.08),
                            use_seq("streamcluster.cpp:1810 work_mem", 0.07)},
                           "cluster")};
  s.replicate_sites = {"streamcluster.cpp:1739 block"};
  return s;
}

// --------------------------------------------------------------- Sequoia --

ProxySpec irsmk_spec() {
  // Implicit radiation solver kernel: 27-point stencil sweeping 29 equal
  // arrays (b, k, and 27 coefficient arrays), all master-allocated (§VIII-B).
  ProxySpec s;
  s.name = "irsmk";
  s.suite = "Sequoia";
  s.inputs = {{"small", 0.15}, {"medium", 0.5}, {"large", 1.6}};
  s.master_alloc = true;
  s.compute_cpa = 1.3;
  s.base_accesses = 30'000'000;
  PhaseSpec sweep;
  sweep.name = "sweep";
  const char* named[] = {"b", "k"};
  for (int i = 0; i < 29; ++i) {
    const std::string site =
        i < 2 ? std::string("irsmk.c:21") + std::to_string(4 + i) + " " + named[i]
              : "irsmk.c:" + std::to_string(228 + i) + " a" + std::to_string(i - 2);
    s.arrays.push_back(ArrayDecl{site, 12 * kMiB});
    sweep.uses.push_back(use_seq(site, 1.0 / 29.0));
  }
  s.phases = {std::move(sweep)};
  return s;
}

ProxySpec amg2006_spec() {
  // Algebraic multigrid: serial initialization, matrix setup, and the
  // bandwidth-hungry solve over the coarse-grid product matrices.  The four
  // arrays below are the ones Fig. 4(a) ranks by CF.
  ProxySpec s;
  s.name = "amg2006";
  s.suite = "Sequoia";
  s.inputs = {{"30x30x30", 1.0}};
  s.master_alloc = true;
  s.compute_cpa = 1.3;
  s.base_accesses = 34'000'000;
  s.arrays = {{"par_csr_matrix.c:998 RAP_diag_j", 96 * kMiB},
              {"par_csr_matrix.c:845 diag_j", 64 * kMiB},
              {"par_csr_matrix.c:846 diag_data", 64 * kMiB},
              {"par_csr_matrix.c:1010 RAP_diag_data", 48 * kMiB},
              {"hypre_memory.c:120 init_grid", 48 * kMiB}};
  // Serial problem construction on the master thread: its own grid data is
  // deliberately NOT a co-locate target, so whole-program interleaving
  // slows this phase down (remote writes from one thread) while DR-BW's
  // targeted co-location leaves it untouched — Fig. 5's key contrast.
  PhaseSpec init;
  init.name = "init";
  init.accesses_fraction = 0.08;
  init.master_only = true;
  init.uses = {use_seq("hypre_memory.c:120 init_grid", 1.0, true)};
  PhaseSpec setup;
  setup.name = "setup";
  setup.accesses_fraction = 0.24;
  setup.uses = {use_seq("par_csr_matrix.c:845 diag_j", 0.30, true),
                use_seq("par_csr_matrix.c:846 diag_data", 0.28, true),
                use_seq("par_csr_matrix.c:998 RAP_diag_j", 0.24, true),
                use_seq("hypre_memory.c:120 init_grid", 0.18)};
  PhaseSpec solve;
  solve.name = "solve";
  solve.accesses_fraction = 0.68;
  solve.uses = {use_seq("par_csr_matrix.c:998 RAP_diag_j", 0.40),
                use_seq("par_csr_matrix.c:845 diag_j", 0.22),
                use_seq("par_csr_matrix.c:846 diag_data", 0.20),
                use_seq("par_csr_matrix.c:1010 RAP_diag_data", 0.18)};
  s.phases = {std::move(init), std::move(setup), std::move(solve)};
  s.colocate_sites = {"par_csr_matrix.c:998 RAP_diag_j",
                      "par_csr_matrix.c:845 diag_j",
                      "par_csr_matrix.c:846 diag_data",
                      "par_csr_matrix.c:1010 RAP_diag_data"};
  return s;
}

// --------------------------------------------------------------- Rodinia --

ProxySpec nw_spec() {
  // Needleman-Wunsch: reference and input_itemsets matrices allocated by
  // the master thread, walked in anti-diagonal wavefronts (§VIII-E).
  ProxySpec s;
  s.name = "nw";
  s.suite = "Rodinia";
  s.inputs = {{"2048", 0.25}, {"4096", 1.0}, {"8192", 4.0}};
  s.master_alloc = true;
  s.compute_cpa = 2.2;
  s.base_accesses = 26'000'000;
  s.arrays = {{"needle.cpp:98 reference", 64 * kMiB},
              {"needle.cpp:92 input_itemsets", 64 * kMiB},
              {"needle.cpp:110 temp", 8 * kMiB}};
  s.phases = {single_phase({use_strided("needle.cpp:98 reference", 0.45, 16),
                            use_strided("needle.cpp:92 input_itemsets", 0.45, 16),
                            use_seq("needle.cpp:110 temp", 0.10, true)},
                           "wavefront")};
  s.colocate_sites = {"needle.cpp:98 reference", "needle.cpp:92 input_itemsets"};
  return s;
}

// ------------------------------------------------------------------- NPB --

ProxySpec bt_spec() {
  ProxySpec s;
  s.name = "bt";
  s.suite = "NPB";
  s.inputs = {{"A", 0.3}, {"B", 1.0}, {"C", 3.0}};
  s.master_alloc = false;
  s.compute_cpa = 2.8;  // block-tridiagonal solves are flop-heavy
  s.base_accesses = 30'000'000;
  s.arrays = {{"bt.f:180 u", 120 * kMiB}};
  s.phases = {single_phase({use_seq("bt.f:180 u", 1.0)}, "adi")};
  return s;
}

ProxySpec cg_spec() {
  ProxySpec s;
  s.name = "cg";
  s.suite = "NPB";
  s.inputs = {{"A", 0.3}, {"B", 1.0}, {"C", 3.2}};
  s.master_alloc = false;
  s.compute_cpa = 1.8;
  s.base_accesses = 28'000'000;
  s.arrays = {{"cg.f:115 colidx", 80 * kMiB}, {"cg.f:120 a", 80 * kMiB}};
  s.phases = {single_phase({use_rand("cg.f:115 colidx", 0.5),
                            use_seq("cg.f:120 a", 0.5)},
                           "spmv")};
  return s;
}

ProxySpec dc_spec() {
  ProxySpec s;
  s.name = "dc";
  s.suite = "NPB";
  s.inputs = {{"A", 0.5}, {"B", 1.0}};
  s.master_alloc = false;
  s.compute_cpa = 2.2;
  s.base_accesses = 20'000'000;
  s.arrays = {{"adc.c:402 tuples", 48 * kMiB}};
  s.phases = {single_phase({use_seq("adc.c:402 tuples", 1.0)}, "cube")};
  return s;
}

ProxySpec ep_spec() {
  ProxySpec s;
  s.name = "ep";
  s.suite = "NPB";
  s.inputs = {{"A", 0.3}, {"B", 1.0}, {"C", 3.0}};
  s.master_alloc = false;
  s.compute_cpa = 8.0;  // embarrassingly parallel RNG: almost no memory
  s.base_accesses = 18'000'000;
  s.arrays = {{"ep.f:165 x", 4 * kMiB}};
  s.phases = {single_phase({use_seq("ep.f:165 x", 1.0)}, "gaussian")};
  return s;
}

ProxySpec ft_spec() {
  // 3-D FFT: local butterflies plus a balanced all-to-all transpose.  The
  // transpose traffic is symmetric across every channel, so interleaving
  // cannot relieve it — at class C under the heaviest configurations its
  // latency alone trips the detector (2 false positives in Table V).
  ProxySpec s;
  s.name = "ft";
  s.suite = "NPB";
  s.inputs = {{"A", 0.3}, {"B", 1.0}, {"C", 2.5}};
  s.master_alloc = false;
  s.compute_cpa = 2.0;
  s.base_accesses = 30'000'000;
  s.arrays = {{"ft.f:140 u0", 160 * kMiB}};
  PhaseSpec evolve;
  evolve.name = "evolve";
  evolve.accesses_fraction = 0.85;
  evolve.uses = {use_seq("ft.f:140 u0", 1.0)};
  PhaseSpec transpose;
  transpose.name = "transpose";
  transpose.accesses_fraction = 0.15;
  transpose.compute_cpa = 8.0;
  ArrayUse across = use_seq("ft.f:140 u0", 1.0);
  across.across = true;
  transpose.uses = {across};
  s.phases = {std::move(evolve), std::move(transpose)};
  return s;
}

ProxySpec is_spec() {
  ProxySpec s;
  s.name = "is";
  s.suite = "NPB";
  s.inputs = {{"A", 0.3}, {"B", 1.0}, {"C", 3.0}};
  s.master_alloc = false;
  s.compute_cpa = 1.6;
  s.base_accesses = 24'000'000;
  s.arrays = {{"is.c:310 key_array", 64 * kMiB}, {"is.c:312 rank", 16 * kMiB}};
  s.phases = {single_phase({use_rand("is.c:310 key_array", 0.6),
                            use_seq("is.c:312 rank", 0.4, true)},
                           "rank")};
  return s;
}

ProxySpec lu_spec() {
  ProxySpec s;
  s.name = "lu";
  s.suite = "NPB";
  s.inputs = {{"A", 0.3}, {"B", 1.0}, {"C", 3.0}};
  s.master_alloc = false;
  s.compute_cpa = 2.6;
  s.base_accesses = 30'000'000;
  s.arrays = {{"lu.f:201 rsd", 140 * kMiB}};
  s.phases = {single_phase({use_seq("lu.f:201 rsd", 1.0)}, "ssor")};
  return s;
}

ProxySpec mg_spec() {
  ProxySpec s;
  s.name = "mg";
  s.suite = "NPB";
  s.inputs = {{"A", 0.25}, {"B", 1.0}, {"C", 3.0}};
  s.master_alloc = false;
  s.compute_cpa = 2.4;
  s.base_accesses = 30'000'000;
  s.arrays = {{"mg.f:172 u", 100 * kMiB}, {"mg.f:173 r", 100 * kMiB}};
  s.phases = {single_phase({use_seq("mg.f:172 u", 0.5),
                            use_seq("mg.f:173 r", 0.5, true)},
                           "vcycle")};
  return s;
}

ProxySpec ua_spec() {
  // Unstructured adaptive mesh: besides the partitioned sweeps, every
  // thread chases irregular element neighbours across the whole mesh.  The
  // traffic is evenly spread (first-touch), so interleave gains nothing,
  // but the diffuse all-to-all load elevates remote latencies enough to
  // trip the detector in 9 of 24 cases (Table V's largest FP group).
  ProxySpec s;
  s.name = "ua";
  s.suite = "NPB";
  s.inputs = {{"A", 0.3}, {"B", 1.0}, {"C", 2.4}};
  s.master_alloc = false;
  s.compute_cpa = 1.6;
  s.base_accesses = 28'000'000;
  s.arrays = {{"ua.f:300 mesh", 140 * kMiB}};
  ArrayUse irregular = use_rand("ua.f:300 mesh", 0.4);
  irregular.across = true;
  s.phases = {single_phase({use_seq("ua.f:300 mesh", 0.6), irregular},
                           "adapt")};
  return s;
}

ProxySpec sp_spec() {
  // Scalar pentadiagonal solver: every field lives in statically allocated
  // global arrays — real contention, but nothing for the heap tracker to
  // attribute (§VIII-F).
  ProxySpec s;
  s.name = "sp";
  s.suite = "NPB";
  s.inputs = {{"A", 0.05}, {"B", 0.25}, {"C", 1.6}};
  s.master_alloc = true;
  s.compute_cpa = 2.6;
  s.base_accesses = 30'000'000;
  s.arrays = {{"sp.f: static fields", 200 * kMiB, ArrayRole::kStatic},
              {"sp.f:88 work_arrays", 12 * kMiB}};
  s.phases = {single_phase({use_seq("sp.f: static fields", 0.92),
                            use_seq("sp.f:88 work_arrays", 0.08)},
                           "adi")};
  return s;
}

// ---------------------------------------------------------------- LULESH --

ProxySpec lulesh_spec() {
  // Sedov blast hydrodynamics: dozens of equally sized node/element arrays
  // allocated back-to-back (lulesh.cc:2158-2238), plus two static tables
  // the tool cannot trace (§VIII-D).
  ProxySpec s;
  s.name = "lulesh";
  s.suite = "LLNL";
  s.inputs = {{"large", 1.0}};
  s.master_alloc = true;
  s.compute_cpa = 6.0;  // hydro kernels are flop-heavy per element touched
  s.base_accesses = 34'000'000;
  PhaseSpec step;
  step.name = "lagrange-step";
  const double heap_weight = 0.945;
  constexpr int kArrays = 8;  // grouped: 5 allocation sites each
  for (int i = 0; i < kArrays; ++i) {
    const std::string site =
        "lulesh.cc:" + std::to_string(2158 + i * 10) + " m_arrays" +
        std::to_string(i);
    s.arrays.push_back(ArrayDecl{site, 48 * kMiB});
    step.uses.push_back(use_seq(site, heap_weight / kArrays));
    s.colocate_sites.push_back(site);
  }
  s.arrays.push_back(ArrayDecl{"lulesh.cc:119 static matElemlist", 16 * kMiB,
                               ArrayRole::kStatic});
  s.arrays.push_back(ArrayDecl{"lulesh.cc:127 static cost_table", 2 * kMiB,
                               ArrayRole::kStatic});
  step.uses.push_back(use_seq("lulesh.cc:119 static matElemlist", 0.04));
  step.uses.push_back(use_rand("lulesh.cc:127 static cost_table", 0.015));
  s.phases = {std::move(step)};
  return s;
}

// ----------------------------------------------------------------- suite --

std::vector<std::unique_ptr<Benchmark>> make_table5_suite() {
  std::vector<std::unique_ptr<Benchmark>> suite;
  using Factory = ProxySpec (*)();
  for (const Factory factory :
       {&swaptions_spec, &blackscholes_spec, &bodytrack_spec, &freqmine_spec,
        &ferret_spec, &fluidanimate_spec, &x264_spec, &streamcluster_spec,
        &irsmk_spec, &amg2006_spec, &nw_spec, &bt_spec, &cg_spec, &dc_spec,
        &ep_spec, &ft_spec, &is_spec, &lu_spec, &mg_spec, &ua_spec, &sp_spec}) {
    suite.push_back(std::make_unique<ProxyBenchmark>(factory()));
  }
  return suite;
}

std::vector<std::string> table5_names() {
  std::vector<std::string> names;
  for (const auto& b : make_table5_suite()) names.push_back(b->name());
  return names;
}

std::unique_ptr<Benchmark> make_suite_benchmark(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "lulesh") {
    return std::make_unique<ProxyBenchmark>(lulesh_spec());
  }
  for (auto& b : make_table5_suite()) {
    if (to_lower(b->name()) == lower) return std::move(b);
  }
  throw Error("unknown benchmark '" + name + "'");
}

}  // namespace drbw::workloads
