#include "drbw/workloads/config.hpp"

namespace drbw::workloads {

std::vector<sim::SimThread> RunConfig::bind(
    const topology::Machine& machine) const {
  DRBW_CHECK_MSG(num_nodes >= 1 && num_nodes <= machine.num_nodes(),
                 "config uses " << num_nodes << " nodes, machine has "
                                << machine.num_nodes());
  DRBW_CHECK_MSG(total_threads % num_nodes == 0,
                 name() << ": threads not divisible by nodes");
  const int per_node = threads_per_node();
  DRBW_CHECK_MSG(
      per_node <= static_cast<int>(machine.cpus_of_node(0).size()),
      name() << " needs " << per_node << " hardware threads per node");

  std::vector<sim::SimThread> threads;
  threads.reserve(static_cast<std::size_t>(total_threads));
  for (int tid = 0; tid < total_threads; ++tid) {
    const topology::NodeId node = node_of_thread(tid);
    const auto& cpus = machine.cpus_of_node(node);
    threads.push_back(sim::SimThread{
        static_cast<std::uint32_t>(tid),
        cpus[static_cast<std::size_t>(tid % per_node)]});
  }
  return threads;
}

std::vector<topology::NodeId> RunConfig::segment_nodes() const {
  std::vector<topology::NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(total_threads));
  for (int tid = 0; tid < total_threads; ++tid) {
    nodes.push_back(node_of_thread(tid));
  }
  return nodes;
}

std::vector<topology::NodeId> RunConfig::active_nodes() const {
  std::vector<topology::NodeId> nodes;
  for (int n = 0; n < num_nodes; ++n) nodes.push_back(n);
  return nodes;
}

std::vector<RunConfig> standard_configs() {
  return {
      {16, 4}, {24, 4}, {32, 4}, {64, 4}, {24, 3}, {16, 2}, {24, 2}, {32, 2},
  };
}

const char* placement_mode_name(PlacementMode mode) {
  switch (mode) {
    case PlacementMode::kOriginal: return "original";
    case PlacementMode::kInterleave: return "interleave";
    case PlacementMode::kColocate: return "co-locate";
    case PlacementMode::kReplicate: return "replicate";
  }
  return "?";
}

}  // namespace drbw::workloads
