#include "drbw/workloads/evaluation.hpp"

#include <algorithm>

#include "drbw/util/task_pool.hpp"

namespace drbw::workloads {

namespace {

sim::RunResult run_mode(const topology::Machine& machine,
                        const Benchmark& benchmark, std::size_t input,
                        const RunConfig& config, PlacementMode mode,
                        sim::EngineConfig engine, mem::AddressSpace* out_space) {
  mem::AddressSpace local_space(machine);
  mem::AddressSpace& space = out_space != nullptr
                                 ? *out_space
                                 : local_space;
  const BuiltWorkload built = benchmark.build(space, machine, config, mode, input);
  return execute(machine, space, built, engine);
}

}  // namespace

int BenchmarkEvaluation::actual_rmc() const {
  return static_cast<int>(
      std::count_if(cases.begin(), cases.end(),
                    [](const CaseOutcome& c) { return c.actual_rmc; }));
}

int BenchmarkEvaluation::detected_rmc() const {
  return static_cast<int>(
      std::count_if(cases.begin(), cases.end(),
                    [](const CaseOutcome& c) { return c.detected_rmc; }));
}

ml::ConfusionMatrix EvaluationResult::confusion() const {
  ml::ConfusionMatrix cm;
  for (const BenchmarkEvaluation& bench : benchmarks) {
    for (const CaseOutcome& c : bench.cases) {
      cm.record(c.actual_rmc ? ml::Label::kRmc : ml::Label::kGood,
                c.detected_rmc ? ml::Label::kRmc : ml::Label::kGood);
    }
  }
  return cm;
}

int EvaluationResult::total_cases() const {
  int n = 0;
  for (const BenchmarkEvaluation& bench : benchmarks) n += bench.total();
  return n;
}

CaseOutcome evaluate_case(const topology::Machine& machine, const DrBw& tool,
                          const Benchmark& benchmark, std::size_t input,
                          const RunConfig& config,
                          const EvaluationOptions& options,
                          std::uint64_t case_seed) {
  CaseOutcome outcome;
  outcome.benchmark = benchmark.name();
  outcome.input = benchmark.input_name(input);
  outcome.config = config;

  // Detection: original placement, DR-BW attached.
  {
    sim::EngineConfig engine = options.engine;
    engine.profiling = true;
    engine.seed = case_seed;
    mem::AddressSpace space(machine);
    const sim::RunResult run = run_mode(machine, benchmark, input, config,
                                        PlacementMode::kOriginal, engine, &space);
    core::AddressSpaceLocator locator(space);
    const Report report = tool.analyze(run, locator);
    outcome.detected_rmc = report.rmc;
    outcome.contended = report.contended;
  }

  // Ground truth: unprofiled original vs interleaved timing (§VII-B).
  sim::EngineConfig timing = options.engine;
  timing.profiling = false;
  timing.seed = case_seed ^ 0x5a5a;
  outcome.original_cycles =
      run_mode(machine, benchmark, input, config, PlacementMode::kOriginal,
               timing, nullptr)
          .total_cycles;
  outcome.interleave_cycles =
      run_mode(machine, benchmark, input, config, PlacementMode::kInterleave,
               timing, nullptr)
          .total_cycles;
  outcome.interleave_speedup =
      static_cast<double>(outcome.original_cycles) /
      static_cast<double>(std::max<std::uint64_t>(outcome.interleave_cycles, 1));
  outcome.actual_rmc = outcome.interleave_speedup > options.ground_truth_speedup;
  return outcome;
}

EvaluationResult evaluate_suite(
    const topology::Machine& machine, const ml::Classifier& model,
    const std::vector<std::unique_ptr<Benchmark>>& benchmarks,
    const EvaluationOptions& options) {
  const DrBw tool(machine, model);

  // Enumerate every (benchmark, input, config) case with its seed first —
  // seed assignment stays a function of enumeration order alone — then fan
  // the independent simulations out and reassemble in order.
  struct PlannedCase {
    std::size_t benchmark = 0;
    std::size_t input = 0;
    RunConfig config;
    std::uint64_t seed = 0;
  };
  std::vector<PlannedCase> planned;
  std::uint64_t case_seed = options.seed;
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    for (std::size_t input = 0; input < benchmarks[b]->num_inputs(); ++input) {
      for (const RunConfig& config : options.configs) {
        planned.push_back(PlannedCase{b, input, config, ++case_seed});
      }
    }
  }

  std::vector<CaseOutcome> outcomes(planned.size());
  util::TaskPool pool(options.jobs);
  pool.parallel_for(planned.size(), [&](std::size_t i) {
    const PlannedCase& c = planned[i];
    outcomes[i] = evaluate_case(machine, tool, *benchmarks[c.benchmark],
                                c.input, c.config, options, c.seed);
  });

  EvaluationResult result;
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    BenchmarkEvaluation evaluation;
    evaluation.name = benchmarks[b]->name();
    evaluation.suite = benchmarks[b]->suite();
    result.benchmarks.push_back(std::move(evaluation));
  }
  for (std::size_t i = 0; i < planned.size(); ++i) {
    result.benchmarks[planned[i].benchmark].cases.push_back(
        std::move(outcomes[i]));
  }
  return result;
}

const OptimizationRun& OptimizationStudy::run(PlacementMode mode) const {
  for (const OptimizationRun& r : runs) {
    if (r.mode == mode) return r;
  }
  throw Error("optimization study has no run for mode " +
              std::string(placement_mode_name(mode)));
}

double OptimizationStudy::speedup(PlacementMode mode) const {
  return static_cast<double>(run(PlacementMode::kOriginal).total_cycles) /
         static_cast<double>(std::max<std::uint64_t>(run(mode).total_cycles, 1));
}

double OptimizationStudy::phase_speedup(PlacementMode mode,
                                        std::size_t phase) const {
  const auto& original = run(PlacementMode::kOriginal).phases;
  const auto& optimized = run(mode).phases;
  DRBW_CHECK_MSG(phase < original.size() && phase < optimized.size(),
                 "phase index " << phase << " out of range");
  return static_cast<double>(original[phase].cycles) /
         static_cast<double>(std::max<std::uint64_t>(optimized[phase].cycles, 1));
}

double OptimizationStudy::remote_access_reduction(PlacementMode mode) const {
  const double before = run(PlacementMode::kOriginal).remote_dram_accesses;
  if (before <= 0.0) return 0.0;
  return 1.0 - run(mode).remote_dram_accesses / before;
}

double OptimizationStudy::latency_reduction(PlacementMode mode) const {
  const double before = run(PlacementMode::kOriginal).avg_access_latency;
  if (before <= 0.0) return 0.0;
  return 1.0 - run(mode).avg_access_latency / before;
}

OptimizationStudy study_optimization(const topology::Machine& machine,
                                     const Benchmark& benchmark,
                                     std::size_t input, const RunConfig& config,
                                     const std::vector<PlacementMode>& modes,
                                     const EvaluationOptions& options) {
  OptimizationStudy study;
  study.benchmark = benchmark.name();
  study.input = benchmark.input_name(input);
  study.config = config;

  std::vector<PlacementMode> all_modes = modes;
  if (std::find(all_modes.begin(), all_modes.end(), PlacementMode::kOriginal) ==
      all_modes.end()) {
    all_modes.insert(all_modes.begin(), PlacementMode::kOriginal);
  }

  // Placement modes are independent runs with disjoint seeds; fan them out
  // and keep the result vector in mode order.
  study.runs.resize(all_modes.size());
  util::TaskPool pool(options.jobs);
  pool.parallel_for(all_modes.size(), [&](std::size_t m) {
    const PlacementMode mode = all_modes[m];
    sim::EngineConfig engine = options.engine;
    engine.profiling = false;  // speedups are measured unprofiled
    engine.seed = options.seed ^ static_cast<std::uint64_t>(mode);
    const sim::RunResult run = run_mode(machine, benchmark, input, config, mode,
                                        engine, nullptr);
    OptimizationRun r;
    r.mode = mode;
    r.total_cycles = run.total_cycles;
    r.phases = run.phases;
    r.remote_dram_accesses = run.remote_dram_accesses;
    r.dram_accesses = run.dram_accesses;
    r.avg_dram_latency = run.avg_dram_latency;
    r.avg_access_latency = run.avg_access_latency;
    study.runs[m] = std::move(r);
  });
  return study;
}

OverheadResult measure_overhead(const topology::Machine& machine,
                                const Benchmark& benchmark, std::size_t input,
                                const RunConfig& config,
                                const EvaluationOptions& options) {
  OverheadResult result;
  result.benchmark = benchmark.name();

  sim::EngineConfig engine = options.engine;
  engine.seed = options.seed;
  engine.profiling = false;
  result.baseline_seconds =
      run_mode(machine, benchmark, input, config, PlacementMode::kOriginal,
               engine, nullptr)
          .seconds(machine);
  engine.profiling = true;
  result.profiled_seconds =
      run_mode(machine, benchmark, input, config, PlacementMode::kOriginal,
               engine, nullptr)
          .seconds(machine);
  result.overhead_percent = 100.0 *
                            (result.profiled_seconds - result.baseline_seconds) /
                            result.baseline_seconds;
  return result;
}

}  // namespace drbw::workloads
