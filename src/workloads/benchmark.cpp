#include "drbw/workloads/benchmark.hpp"

#include <algorithm>
#include <map>

namespace drbw::workloads {

ProxyBenchmark::ProxyBenchmark(ProxySpec spec) : spec_(std::move(spec)) {
  DRBW_CHECK_MSG(!spec_.inputs.empty(), spec_.name << ": no inputs declared");
  DRBW_CHECK_MSG(!spec_.arrays.empty(), spec_.name << ": no arrays declared");
  DRBW_CHECK_MSG(!spec_.phases.empty(), spec_.name << ": no phases declared");
  // Every phase use must reference a declared array.
  for (const PhaseSpec& phase : spec_.phases) {
    for (const ArrayUse& use : phase.uses) {
      const bool known =
          std::any_of(spec_.arrays.begin(), spec_.arrays.end(),
                      [&](const ArrayDecl& a) { return a.site == use.site; });
      DRBW_CHECK_MSG(known, spec_.name << ": phase '" << phase.name
                                       << "' uses undeclared array " << use.site);
    }
  }
}

std::string ProxyBenchmark::input_name(std::size_t input) const {
  DRBW_CHECK_MSG(input < spec_.inputs.size(),
                 spec_.name << ": input " << input << " out of range");
  return spec_.inputs[input].first;
}

mem::PlacementSpec ProxyBenchmark::placement_for(const ArrayDecl& array,
                                                 const RunConfig& config,
                                                 PlacementMode mode) const {
  auto original = [&]() -> mem::PlacementSpec {
    if (array.role == ArrayRole::kStatic) {
      // Program image: loaded (and zero-page first-touched by the loader /
      // master thread) onto node 0.
      return mem::PlacementSpec::bind(0);
    }
    if (!spec_.master_alloc && array.role == ArrayRole::kPartitioned) {
      // Parallel first-touch initialization co-locates shares.
      return mem::PlacementSpec::colocate(config.segment_nodes());
    }
    if (!spec_.master_alloc && array.role == ArrayRole::kShared) {
      // Parallel first-touch of a shared structure scatters its pages
      // roughly evenly over the touching nodes.
      return mem::PlacementSpec::interleave(config.active_nodes());
    }
    return mem::PlacementSpec::bind(array.bind_node);  // master allocation
  };

  switch (mode) {
    case PlacementMode::kOriginal:
      return original();
    case PlacementMode::kInterleave:
      // numactl --interleave affects the whole program, statics included.
      return mem::PlacementSpec::interleave(config.active_nodes());
    case PlacementMode::kColocate: {
      if (array.role == ArrayRole::kStatic) return original();  // untracked
      const bool targeted =
          spec_.colocate_sites.empty()
              ? array.role == ArrayRole::kPartitioned
              : std::find(spec_.colocate_sites.begin(),
                          spec_.colocate_sites.end(),
                          array.site) != spec_.colocate_sites.end();
      return targeted ? mem::PlacementSpec::colocate(config.segment_nodes())
                      : original();
    }
    case PlacementMode::kReplicate: {
      const bool targeted =
          std::find(spec_.replicate_sites.begin(), spec_.replicate_sites.end(),
                    array.site) != spec_.replicate_sites.end();
      return targeted && array.role != ArrayRole::kStatic
                 ? mem::PlacementSpec::replicate()
                 : original();
    }
  }
  return original();
}

BuiltWorkload ProxyBenchmark::build(mem::AddressSpace& space,
                                    const topology::Machine& machine,
                                    const RunConfig& config, PlacementMode mode,
                                    std::size_t input) const {
  DRBW_CHECK_MSG(input < spec_.inputs.size(),
                 spec_.name << ": input " << input << " out of range");
  const double scale = spec_.inputs[input].second;
  const int threads = config.total_threads;

  struct Placed {
    mem::ObjectId id = 0;
    std::uint64_t bytes = 0;
    ArrayRole role = ArrayRole::kPartitioned;
  };
  std::map<std::string, Placed> placed;
  for (const ArrayDecl& decl : spec_.arrays) {
    const auto bytes = std::max<std::uint64_t>(
        4096, static_cast<std::uint64_t>(static_cast<double>(decl.bytes) * scale));
    const mem::PlacementSpec placement = placement_for(decl, config, mode);
    const mem::ObjectId id =
        decl.role == ArrayRole::kStatic
            ? space.allocate_static(decl.site, bytes, placement)
            : space.allocate(decl.site, bytes, placement);
    placed[decl.site] = Placed{id, bytes, decl.role};
  }

  BuiltWorkload built;
  built.threads = config.bind(machine);

  // Cache sharing under this configuration: hyperthreads split the private
  // caches once more threads than cores land on a node; co-resident threads
  // split the socket L3.
  const int tpn = config.threads_per_node();
  const double l12_share =
      tpn > machine.spec().cores_per_socket ? 0.5 : 1.0;
  const double l3_share = 1.0 / static_cast<double>(tpn);

  const double total_accesses =
      static_cast<double>(spec_.base_accesses) * scale;

  for (const PhaseSpec& phase : spec_.phases) {
    sim::Phase out;
    out.name = phase.name;
    out.work.resize(static_cast<std::size_t>(threads));
    const int workers = phase.master_only ? 1 : threads;
    const double phase_accesses = total_accesses * phase.accesses_fraction;

    for (int tid = 0; tid < workers; ++tid) {
      sim::ThreadWork& work = out.work[static_cast<std::size_t>(tid)];
      work.compute_cycles_per_access =
          phase.compute_cpa > 0.0 ? phase.compute_cpa : spec_.compute_cpa;

      // The thread's temporal working set: everything it touches per sweep.
      std::uint64_t working_set = 0;
      for (const ArrayUse& use : phase.uses) {
        const Placed& arr = placed.at(use.site);
        working_set +=
            arr.role == ArrayRole::kShared || use.across || phase.master_only
                ? arr.bytes
                : arr.bytes / static_cast<std::uint64_t>(threads);
      }

      for (const ArrayUse& use : phase.uses) {
        const Placed& arr = placed.at(use.site);
        const auto count = static_cast<std::uint64_t>(
            phase_accesses * use.weight / static_cast<double>(workers));
        if (count == 0) continue;

        sim::AccessBurst burst;
        burst.object = arr.id;
        burst.pattern = use.pattern;
        burst.count = count;
        burst.is_write = use.write;
        burst.elem_bytes = use.elem_bytes;
        burst.stride_bytes = use.stride_bytes;
        burst.parallel_streams = use.streams;
        burst.working_set_bytes = working_set;
        burst.l12_share = l12_share;
        burst.l3_share = l3_share;
        if (arr.role == ArrayRole::kShared || use.across || phase.master_only) {
          burst.offset_bytes = 0;
          burst.span_bytes = 0;  // whole array
        } else {
          const std::uint64_t share =
              arr.bytes / static_cast<std::uint64_t>(threads);
          burst.offset_bytes = share * static_cast<std::uint64_t>(tid);
          burst.span_bytes = tid == threads - 1
                                 ? arr.bytes - burst.offset_bytes
                                 : share;
          if (burst.span_bytes == 0) continue;  // degenerate tiny array
        }
        work.bursts.push_back(burst);
      }
    }
    built.phases.push_back(std::move(out));
  }
  return built;
}

sim::RunResult execute(const topology::Machine& machine,
                       mem::AddressSpace& space, const BuiltWorkload& built,
                       const sim::EngineConfig& engine_config) {
  sim::Engine engine(machine, space, engine_config);
  return engine.run(built.threads, built.phases);
}

}  // namespace drbw::workloads
