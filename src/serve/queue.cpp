#include "drbw/serve/queue.hpp"

#include <algorithm>

#include "drbw/util/error.hpp"

namespace drbw::serve {

const char* overload_policy_name(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShedOldest:
      return "shed-oldest";
    case OverloadPolicy::kReject:
      return "reject";
  }
  return "?";
}

OverloadPolicy overload_policy_from_name(const std::string& name) {
  for (const OverloadPolicy policy :
       {OverloadPolicy::kBlock, OverloadPolicy::kShedOldest,
        OverloadPolicy::kReject}) {
    if (name == overload_policy_name(policy)) return policy;
  }
  throw Error("unknown overload policy '" + name +
                  "' (use block, shed-oldest, or reject)",
              ErrorCode::kUsage);
}

const char* admit_result_name(AdmitResult result) {
  switch (result) {
    case AdmitResult::kAdmitted:
      return "admitted";
    case AdmitResult::kShed:
      return "shed";
    case AdmitResult::kRejected:
      return "rejected";
    case AdmitResult::kDeferred:
      return "deferred";
  }
  return "?";
}

BoundedQueue::BoundedQueue(std::size_t depth, OverloadPolicy policy)
    : depth_(std::max<std::size_t>(1, depth)), policy_(policy) {}

AdmitResult BoundedQueue::push(const pebs::SessionSample& sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.size() < depth_) {
    queue_.push_back(sample);
    peak_ = std::max(peak_, queue_.size());
    ++admitted_;
    return AdmitResult::kAdmitted;
  }
  switch (policy_) {
    case OverloadPolicy::kBlock:
      ++deferred_;
      return AdmitResult::kDeferred;
    case OverloadPolicy::kShedOldest:
      queue_.pop_front();
      queue_.push_back(sample);
      ++admitted_;
      ++shed_;
      return AdmitResult::kShed;
    case OverloadPolicy::kReject:
      ++rejected_;
      return AdmitResult::kRejected;
  }
  ++rejected_;
  return AdmitResult::kRejected;
}

std::vector<pebs::SessionSample> BoundedQueue::drain(std::size_t max) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = std::min(max, queue_.size());
  std::vector<pebs::SessionSample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(queue_.front());
    queue_.pop_front();
  }
  return out;
}

std::size_t BoundedQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t BoundedQueue::peak() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

std::uint64_t BoundedQueue::admitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

std::uint64_t BoundedQueue::shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

std::uint64_t BoundedQueue::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

std::uint64_t BoundedQueue::deferred() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deferred_;
}

}  // namespace drbw::serve
