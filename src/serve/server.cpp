#include "drbw/serve/server.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <sstream>

#include "drbw/core/profiler.hpp"
#include "drbw/fault/injector.hpp"
#include "drbw/features/selected.hpp"
#include "drbw/obs/metrics.hpp"
#include "drbw/obs/trace.hpp"
#include "drbw/util/artifact.hpp"
#include "drbw/util/task_pool.hpp"

namespace drbw::serve {

namespace {

/// Page locator for replayed streams: every recorded allocation range is
/// homed on node 0 (the master-allocation default), like the CLI's offline
/// analyze path.  Read-only after construction, so concurrent locate()
/// calls from classify tasks are safe.
class ReplayLocator final : public core::PageLocator {
 public:
  explicit ReplayLocator(const std::vector<mem::AllocationEvent>& events) {
    for (const auto& e : events) {
      if (e.kind == mem::AllocationEvent::Kind::kAlloc) {
        ranges_[e.base] = e.base + e.size_bytes;
      }
    }
  }
  topology::NodeId locate(mem::Addr addr, topology::NodeId) override {
    auto it = ranges_.upper_bound(addr);
    if (it != ranges_.begin()) {
      --it;
      if (addr < it->second) return 0;
    }
    return 0;
  }

 private:
  std::map<mem::Addr, mem::Addr> ranges_;
};

/// One deterministic retry loop: `draw(attempt)` returns true when the
/// injected fault fires for that attempt.  Success on any attempt makes the
/// operation ok; every extra attempt costs an exponentially growing
/// simulated-cycle backoff penalty.
struct RetryOutcome {
  bool ok = false;
  std::uint64_t retries = 0;
  std::uint64_t backoff_cycles = 0;
};

template <typename Draw>
RetryOutcome attempt_with_backoff(int max_retries, std::uint64_t backoff_base,
                                  Draw&& draw) {
  RetryOutcome out;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (!draw(static_cast<std::uint64_t>(attempt))) {
      out.ok = true;
      return out;
    }
    if (attempt < max_retries) {
      ++out.retries;
      out.backoff_cycles += backoff_base << static_cast<unsigned>(attempt);
    }
  }
  return out;
}

/// Mutable per-client replay state around the public ClientStats.
struct ClientState {
  ClientStats stats;
  std::size_t cursor = 0;  ///< next unconsumed session sample
  std::vector<pebs::SessionSample> deferred;  ///< pushed back under block
  std::vector<pebs::SessionSample> buffer;    ///< sliding classify window
  int consecutive_faults = 0;
  // Model-health accounting (touched only when a model is present).
  std::vector<double> window_confidences;
  std::uint64_t rows_classified = 0;
  ml::DriftBaseline serving;  ///< serving-side drift histograms
};

const char* bool_token(bool v) { return v ? "true" : "false"; }

/// Fixed, locale-independent double rendering for the snapshot body.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Lower-median over an unsorted copy (nearest-rank, deterministic).
double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[(values.size() - 1) / 2];
}

/// Bounds the snapshot: merges adjacent timeline rows until at most
/// `max_rows` remain.  Counts sum, drift takes the running max, and the
/// merged confidence is the lower median of the source rows' medians —
/// a pure function of the input, so snapshots stay byte-identical at any
/// --jobs count.
std::vector<TimelineRow> downsample_timeline(
    const std::vector<TimelineRow>& rows, std::size_t max_rows) {
  if (rows.size() <= max_rows) return rows;
  const std::size_t group = (rows.size() + max_rows - 1) / max_rows;
  std::vector<TimelineRow> out;
  out.reserve(max_rows);
  for (std::size_t at = 0; at < rows.size(); at += group) {
    const std::size_t end = std::min(rows.size(), at + group);
    TimelineRow merged = rows[at];
    merged.merged = 0;
    std::vector<double> confidences;
    for (std::size_t i = at; i < end; ++i) {
      merged.merged += rows[i].merged;
      if (i > at) {
        merged.windows += rows[i].windows;
        merged.rmc += rows[i].rmc;
        merged.drift_score = std::max(merged.drift_score, rows[i].drift_score);
      }
      confidences.push_back(rows[i].confidence_p50);
    }
    merged.confidence_p50 = median_of(std::move(confidences));
    out.push_back(merged);
  }
  return out;
}

/// Snapshot timelines never exceed this many rows (see downsample_timeline).
constexpr std::size_t kSnapshotTimelineRows = 256;

}  // namespace

std::string render_snapshot(const ServeResult& r) {
  std::ostringstream os;
  os << "{\n  \"drbw_serve_snapshot\": " << kServeSnapshotVersion << ",\n";
  os << "  \"degraded\": " << bool_token(r.degraded) << ",\n";
  os << "  \"drained\": " << bool_token(r.drained) << ",\n";
  os << "  \"ticks\": " << r.ticks << ",\n";
  os << "  \"window_cycles\": " << r.window_cycles << ",\n";
  os << "  \"samples\": {\"in\": " << r.samples_in
     << ", \"admitted\": " << r.samples_admitted
     << ", \"shed\": " << r.samples_shed
     << ", \"rejected\": " << r.samples_rejected
     << ", \"deferred\": " << r.samples_deferred
     << ", \"dropped\": " << r.samples_dropped << "},\n";
  os << "  \"windows\": {\"classified\": " << r.windows_classified
     << ", \"rmc\": " << r.windows_rmc << "},\n";
  const std::vector<TimelineRow> timeline =
      downsample_timeline(r.timeline, kSnapshotTimelineRows);
  os << "  \"timeline\": [";
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const TimelineRow& row = timeline[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"tick\": " << row.tick
       << ", \"merged\": " << row.merged << ", \"windows\": " << row.windows
       << ", \"rmc\": " << row.rmc
       << ", \"confidence_p50\": " << fmt_double(row.confidence_p50)
       << ", \"drift\": " << fmt_double(row.drift_score) << "}";
  }
  os << (timeline.empty() ? "]" : "\n  ]") << ",\n";
  if (r.drift_available) {
    os << "  \"drift\": {\"threshold\": " << fmt_double(r.drift_threshold)
       << ", \"score\": " << fmt_double(r.drift_score)
       << ", \"confidence_p50\": " << fmt_double(r.confidence_p50)
       << ", \"suspected_clients\": " << r.drift_suspected_clients
       << ", \"clients\": [";
    for (std::size_t i = 0; i < r.model_health.size(); ++i) {
      const ClientModelHealth& mh = r.model_health[i];
      os << (i == 0 ? "\n" : ",\n") << "    {\"client\": " << mh.client
         << ", \"windows\": " << mh.windows << ", \"rows\": " << mh.rows
         << ", \"confidence_p50\": " << fmt_double(mh.confidence_p50)
         << ", \"confidence_min\": " << fmt_double(mh.confidence_min)
         << ", \"score\": " << fmt_double(mh.drift_score)
         << ", \"suspected\": " << bool_token(mh.drift_suspected) << "}";
    }
    os << (r.model_health.empty() ? "]" : "\n  ]") << "},\n";
  }
  os << "  \"faults\": {\"total\": " << r.faults
     << ", \"retries\": " << r.retries
     << ", \"quarantined_clients\": " << r.quarantined_clients << "},\n";
  os << "  \"clients\": [";
  for (std::size_t i = 0; i < r.clients.size(); ++i) {
    const ClientStats& c = r.clients[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"client\": " << c.client
       << ", \"offered\": " << c.offered << ", \"admitted\": " << c.admitted
       << ", \"shed\": " << c.shed << ", \"rejected\": " << c.rejected
       << ", \"deferred\": " << c.deferred << ", \"dropped\": " << c.dropped
       << ", \"faults\": " << c.faults << ", \"retries\": " << c.retries
       << ", \"backoff_cycles\": " << c.backoff_cycles
       << ", \"windows_classified\": " << c.windows_classified
       << ", \"windows_rmc\": " << c.windows_rmc
       << ", \"peak_depth\": " << c.peak_depth
       << ", \"quarantined\": " << bool_token(c.quarantined)
       << ", \"quarantined_tick\": " << c.quarantined_tick << "}";
  }
  os << (r.clients.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

Server::Server(const topology::Machine& machine, const ml::Classifier* model,
               ServeOptions options)
    : machine_(machine), model_(model), options_(std::move(options)) {}

ServeResult Server::run(const pebs::Trace& trace) {
  const std::uint32_t clients = std::max<std::uint32_t>(1, options_.clients);
  const std::size_t queue_depth = std::max<std::size_t>(1, options_.queue_depth);
  const std::size_t drain_n =
      options_.drain_per_tick == 0 ? queue_depth : options_.drain_per_tick;
  const int breaker = std::max(1, options_.breaker_threshold);
  const std::uint64_t span = pebs::trace_cycle_span(trace);
  const std::uint64_t window =
      options_.window_cycles == 0 ? span / 8 + 1 : options_.window_cycles;

  const std::vector<pebs::ClientSession> sessions =
      pebs::slice_sessions(trace, clients);
  ReplayLocator locator(trace.events);
  util::TaskPool pool(options_.jobs);

  std::vector<ClientState> states(clients);
  // deque: BoundedQueue is immovable (owns a mutex), and deque constructs
  // elements in place without relocating the existing ones.
  std::deque<BoundedQueue> queues;
  for (std::uint32_t c = 0; c < clients; ++c) {
    states[c].stats.client = c;
    queues.emplace_back(queue_depth, options_.overload);
  }

  ServeResult result;
  result.degraded = model_ == nullptr;
  result.window_cycles = window;
  result.samples_in = trace.samples.size();
  // Drift needs a v3 model with an embedded training baseline; without one
  // the run still serves (and still records the confidence timeline), the
  // drift section is just unavailable.
  const bool drift_on = model_ != nullptr && model_->has_drift_baseline();
  const std::size_t num_features =
      model_ != nullptr ? model_->feature_names().size() : 0;
  result.drift_available = drift_on;
  result.drift_threshold = options_.drift_threshold;

  // Trip the circuit breaker: quarantine the client and discard everything
  // it still holds (queued, deferred, and unconsumed session samples).
  const auto record_fault = [&](std::uint32_t c, std::uint64_t tick) {
    ClientState& st = states[c];
    ++st.stats.faults;
    ++st.consecutive_faults;
    if (!st.stats.quarantined && st.consecutive_faults >= breaker) {
      st.stats.quarantined = true;
      st.stats.quarantined_tick = tick;
      st.stats.dropped += queues[c].drain(queue_depth).size();
      st.stats.dropped += st.deferred.size();
      st.deferred.clear();
      st.stats.dropped += sessions[c].samples.size() - st.cursor;
      st.cursor = sessions[c].samples.size();
      st.buffer.clear();
    }
  };

  // Per-client model health + run-level drift/confidence rollup — pure
  // function of the accumulated state, shared by partial and final
  // snapshots.
  const auto fill_model_health = [&](ServeResult& out) {
    if (!drift_on) return;
    out.model_health.clear();
    out.drift_score = 0.0;
    out.drift_suspected_clients = 0;
    std::vector<double> all_confidences;
    for (std::uint32_t c = 0; c < clients; ++c) {
      const ClientState& st = states[c];
      ClientModelHealth mh;
      mh.client = c;
      mh.windows = st.window_confidences.size();
      mh.rows = st.rows_classified;
      if (!st.window_confidences.empty()) {
        mh.confidence_p50 = median_of(st.window_confidences);
        mh.confidence_min = *std::min_element(st.window_confidences.begin(),
                                              st.window_confidences.end());
      }
      if (!st.serving.empty()) {
        for (const double d :
             model_->drift_baseline().divergence(st.serving)) {
          mh.drift_score = std::max(mh.drift_score, d);
        }
      }
      mh.drift_suspected = options_.drift_threshold > 0.0 && mh.windows > 0 &&
                           mh.drift_score >= options_.drift_threshold;
      if (mh.drift_suspected) ++out.drift_suspected_clients;
      out.drift_score = std::max(out.drift_score, mh.drift_score);
      all_confidences.insert(all_confidences.end(),
                             st.window_confidences.begin(),
                             st.window_confidences.end());
      out.model_health.push_back(mh);
    }
    out.confidence_p50 = median_of(std::move(all_confidences));
  };

  // Generous termination backstop: the loop below always makes progress
  // (every tick consumes arrivals, drains queues, or trips a breaker), but
  // a hard cap turns any future regression into a truncated-run result
  // instead of a hang.
  const std::uint64_t hard_cap =
      span / window + static_cast<std::uint64_t>(trace.samples.size()) + 16;

  struct Slot {
    bool candidate = false;
    bool window_fault = false;
    bool classify_fault = false;
    bool rmc = false;
    std::uint64_t retries = 0;
    std::uint64_t backoff_cycles = 0;
    // Model-health payload, merged serially after the fan-out.
    bool has_confidence = false;
    double confidence = 0.0;  ///< min row confidence in the window
    std::uint64_t rows = 0;
    ml::DriftBaseline drift;
  };

  std::uint64_t tick = 0;
  for (;; ++tick) {
    bool pending = false;
    for (std::uint32_t c = 0; c < clients; ++c) {
      const ClientState& st = states[c];
      if (st.stats.quarantined) continue;
      if (st.cursor < sessions[c].samples.size() || !st.deferred.empty() ||
          queues[c].size() > 0) {
        pending = true;
        break;
      }
    }
    if (!pending) break;
    const std::uint64_t window_start = tick * window;
    if ((options_.max_cycles != 0 && window_start >= options_.max_cycles) ||
        tick >= hard_cap) {
      // Replay cut short: account every unserved sample so the snapshot
      // still balances, then stop cleanly (the caller still snapshots).
      result.drained = false;
      for (std::uint32_t c = 0; c < clients; ++c) {
        ClientState& st = states[c];
        if (st.stats.quarantined) continue;
        st.stats.dropped += queues[c].drain(queue_depth).size();
        st.stats.dropped += st.deferred.size();
        st.deferred.clear();
        st.stats.dropped += sessions[c].samples.size() - st.cursor;
        st.cursor = sessions[c].samples.size();
      }
      break;
    }
    const std::uint64_t window_end = window_start + window;

    obs::Span tick_span("serve.tick");
    tick_span.arg("tick", static_cast<double>(tick));

    // -- admission (serial, client then ordinal order) ---------------------
    for (std::uint32_t c = 0; c < clients; ++c) {
      ClientState& st = states[c];
      if (st.stats.quarantined) continue;
      const std::vector<pebs::SessionSample>& stream = sessions[c].samples;
      const bool has_arrival =
          st.cursor < stream.size() && stream[st.cursor].sample.cycle < window_end;
      if (!has_arrival && st.deferred.empty()) continue;

      // Session-level gate: one retryable draw per client-window.
      const std::uint64_t session_key =
          tick * static_cast<std::uint64_t>(clients) + c;
      const RetryOutcome session = attempt_with_backoff(
          options_.max_retries, options_.backoff_cycles,
          [&](std::uint64_t attempt) {
            return fault::should_inject("serve.session", fault::Kind::kFail,
                                        session_key * 16 + attempt);
          });
      st.stats.retries += session.retries;
      st.stats.backoff_cycles += session.backoff_cycles;
      if (!session.ok) {
        // The whole window's admission is skipped; arrivals stay pending
        // and are re-offered next tick (the breaker bounds how long).
        record_fault(c, tick);
        continue;
      }
      st.consecutive_faults = 0;

      std::vector<pebs::SessionSample> offers;
      offers.swap(st.deferred);
      while (st.cursor < stream.size() &&
             stream[st.cursor].sample.cycle < window_end) {
        offers.push_back(stream[st.cursor]);
        ++st.cursor;
      }
      for (const pebs::SessionSample& sample : offers) {
        if (st.stats.quarantined) {
          ++st.stats.dropped;
          continue;
        }
        ++st.stats.offered;
        if (fault::should_inject("serve.ingest", fault::Kind::kDropSample,
                                 sample.ordinal)) {
          ++st.stats.dropped;
          continue;
        }
        const RetryOutcome ingest = attempt_with_backoff(
            options_.max_retries, options_.backoff_cycles,
            [&](std::uint64_t attempt) {
              return fault::should_inject("serve.ingest", fault::Kind::kFail,
                                          sample.ordinal * 16 + attempt);
            });
        st.stats.retries += ingest.retries;
        st.stats.backoff_cycles += ingest.backoff_cycles;
        if (!ingest.ok) {
          ++st.stats.dropped;
          record_fault(c, tick);
          continue;
        }
        switch (queues[c].push(sample)) {
          case AdmitResult::kAdmitted:
          case AdmitResult::kShed:
            st.consecutive_faults = 0;
            break;
          case AdmitResult::kDeferred:
            st.deferred.push_back(sample);
            break;
          case AdmitResult::kRejected:
            break;
        }
      }
    }

    // -- drain into sliding windows (serial) -------------------------------
    std::vector<Slot> slots(clients);
    for (std::uint32_t c = 0; c < clients; ++c) {
      ClientState& st = states[c];
      if (st.stats.quarantined) continue;
      const std::vector<pebs::SessionSample> batch = queues[c].drain(drain_n);
      if (batch.empty()) continue;
      st.buffer.insert(st.buffer.end(), batch.begin(), batch.end());
      if (st.buffer.size() > options_.window_capacity) {
        st.buffer.erase(st.buffer.begin(),
                        st.buffer.begin() +
                            static_cast<std::ptrdiff_t>(
                                st.buffer.size() - options_.window_capacity));
      }
      if (model_ != nullptr) slots[c].candidate = true;
    }

    // -- classify (indexed fan-out; applied serially below) ----------------
    pool.parallel_for(clients, [&](std::size_t i) {
      Slot& slot = slots[i];
      if (!slot.candidate) return;
      const std::uint64_t key =
          tick * static_cast<std::uint64_t>(clients) + i;
      const RetryOutcome featurize = attempt_with_backoff(
          options_.max_retries, options_.backoff_cycles,
          [&](std::uint64_t attempt) {
            return fault::should_inject("serve.window", fault::Kind::kFail,
                                        key * 16 + attempt);
          });
      slot.retries += featurize.retries;
      slot.backoff_cycles += featurize.backoff_cycles;
      if (!featurize.ok) {
        slot.window_fault = true;
        return;
      }
      std::vector<pebs::MemorySample> samples;
      samples.reserve(states[i].buffer.size());
      for (const pebs::SessionSample& s : states[i].buffer) {
        samples.push_back(s.sample);
      }
      core::Profiler profiler(machine_, locator);
      const core::ProfileResult profile =
          profiler.profile(trace.events, samples);
      const std::vector<features::ChannelFeatures> channels =
          features::extract_channels(profile, machine_);
      std::vector<std::vector<double>> rows;
      for (const features::ChannelFeatures& ch : channels) {
        if (ch.features.scope_samples < options_.min_window_samples) continue;
        if (ch.features.values[5] <
            static_cast<double>(options_.min_remote_samples)) {
          continue;
        }
        rows.push_back(ch.features.as_row());
      }
      const RetryOutcome classify = attempt_with_backoff(
          options_.max_retries, options_.backoff_cycles,
          [&](std::uint64_t attempt) {
            return fault::should_inject("serve.classify", fault::Kind::kFail,
                                        key * 16 + attempt);
          });
      slot.retries += classify.retries;
      slot.backoff_cycles += classify.backoff_cycles;
      if (!classify.ok) {
        slot.classify_fault = true;
        return;
      }
      if (!rows.empty()) {
        slot.rows = rows.size();
        if (drift_on) slot.drift.resize(num_features);
        double confidence = 1.0;
        for (const std::vector<double>& row : rows) {
          const ml::Explanation exp = model_->predict_explained(row);
          if (exp.label == ml::Label::kRmc) slot.rmc = true;
          confidence = std::min(confidence, exp.confidence);
          if (drift_on) model_->observe_drift(row, slot.drift);
        }
        slot.confidence = confidence;
        slot.has_confidence = true;
      }
    });

    std::vector<double> tick_confidences;
    std::uint64_t tick_windows = 0;
    std::uint64_t tick_rmc = 0;
    for (std::uint32_t c = 0; c < clients; ++c) {
      const Slot& slot = slots[c];
      if (!slot.candidate) continue;
      ClientState& st = states[c];
      st.stats.retries += slot.retries;
      st.stats.backoff_cycles += slot.backoff_cycles;
      if (slot.window_fault || slot.classify_fault) {
        record_fault(c, tick);
        continue;
      }
      st.consecutive_faults = 0;
      ++st.stats.windows_classified;
      ++tick_windows;
      if (slot.rmc) {
        ++st.stats.windows_rmc;
        ++tick_rmc;
      }
      if (slot.has_confidence) {
        st.window_confidences.push_back(slot.confidence);
        tick_confidences.push_back(slot.confidence);
        st.rows_classified += slot.rows;
        if (drift_on) st.serving.merge(slot.drift);
      }
    }

    if (tick_windows > 0) {
      // One windowed-timeline row per classifying tick; the drift column is
      // the running max across clients so the rendered timeline shows when
      // serving traffic left the training distribution.
      double drift_now = 0.0;
      if (drift_on) {
        for (const ClientState& st : states) {
          if (st.serving.empty()) continue;
          for (const double d :
               model_->drift_baseline().divergence(st.serving)) {
            drift_now = std::max(drift_now, d);
          }
        }
      }
      result.timeline.push_back(TimelineRow{tick, 1, tick_windows, tick_rmc,
                                            median_of(tick_confidences),
                                            drift_now});
    }

    result.ticks = tick + 1;
    if (!options_.snapshot_path.empty() && options_.snapshot_every != 0 &&
        (tick + 1) % options_.snapshot_every == 0) {
      ServeResult partial = result;
      for (std::uint32_t c = 0; c < clients; ++c) {
        states[c].stats.peak_depth = queues[c].peak();
        partial.clients.push_back(states[c].stats);
      }
      fill_model_health(partial);
      obs::Span snap_span("serve.snapshot");
      partial.snapshot_json = render_snapshot(partial);
      util::write_versioned_artifact(options_.snapshot_path, "serve-snapshot",
                                     kServeSnapshotVersion,
                                     partial.snapshot_json);
      ++result.snapshots_written;
    }
  }

  // -- final accounting ----------------------------------------------------
  for (std::uint32_t c = 0; c < clients; ++c) {
    ClientStats& st = states[c].stats;
    st.admitted = queues[c].admitted();
    st.shed = queues[c].shed();
    st.rejected = queues[c].rejected();
    st.deferred = queues[c].deferred();
    st.peak_depth = queues[c].peak();
    result.samples_admitted += st.admitted;
    result.samples_shed += st.shed;
    result.samples_rejected += st.rejected;
    result.samples_deferred += st.deferred;
    result.samples_dropped += st.dropped;
    result.windows_classified += st.windows_classified;
    result.windows_rmc += st.windows_rmc;
    result.faults += st.faults;
    result.retries += st.retries;
    if (st.quarantined) ++result.quarantined_clients;
    result.clients.push_back(st);
  }
  fill_model_health(result);

  auto& registry = obs::Registry::global();
  registry
      .counter("drbw_serve_samples_ingested_total",
               "Trace samples routed into client sessions by drbw serve")
      .add(result.samples_in);
  registry
      .counter("drbw_serve_samples_admitted_total",
               "Samples admitted through the bounded client queues")
      .add(result.samples_admitted);
  registry
      .counter("drbw_serve_samples_shed_total",
               "Oldest queued samples evicted under the shed-oldest policy")
      .add(result.samples_shed);
  registry
      .counter("drbw_serve_samples_rejected_total",
               "Samples refused by a full queue under the reject policy")
      .add(result.samples_rejected);
  registry
      .counter("drbw_serve_samples_deferred_total",
               "Push-back events on a full queue under the block policy")
      .add(result.samples_deferred);
  registry
      .counter("drbw_serve_samples_dropped_total",
               "Samples lost to injected drops, exhausted retries, "
               "quarantine, or a --max-cycles cutoff")
      .add(result.samples_dropped);
  registry
      .counter("drbw_serve_windows_classified_total",
               "Sliding windows featurized and classified by drbw serve")
      .add(result.windows_classified);
  registry
      .counter("drbw_serve_windows_rmc_total",
               "Classified windows with at least one contended channel")
      .add(result.windows_rmc);
  registry
      .counter("drbw_serve_ticks_total",
               "Replay ticks (ingest windows) executed by drbw serve")
      .add(result.ticks);
  registry
      .counter("drbw_serve_faults_total",
               "Serve operations that exhausted their retries")
      .add(result.faults);
  registry
      .counter("drbw_serve_retries_total",
               "Extra attempts taken by the serve retry-with-backoff loops")
      .add(result.retries);
  registry
      .counter("drbw_serve_clients_quarantined_total",
               "Clients tripped into quarantine by the circuit breaker")
      .add(result.quarantined_clients);
  std::uint64_t peak = 0;
  for (const ClientStats& st : result.clients) {
    peak = std::max(peak, st.peak_depth);
  }
  registry
      .gauge("drbw_serve_queue_depth_peak",
             "High-water mark across every client ingest queue")
      .set_max(static_cast<double>(peak));
  if (model_ != nullptr) {
    auto& confidence_hist = registry.histogram(
        "drbw_model_confidence_bucket",
        "Per-window classification confidence (leaf purity, percent)",
        {50, 60, 70, 80, 90, 95, 100});
    for (const ClientState& st : states) {
      for (const double c : st.window_confidences) {
        confidence_hist.observe(static_cast<std::uint64_t>(c * 100.0 + 0.5));
      }
    }
    registry
        .gauge("drbw_model_drift_score",
               "Max per-feature PSI divergence of serving traffic from the "
               "model's training baseline (0 when the model has none)")
        .set_max(result.drift_score);
  }

  if (!options_.snapshot_path.empty()) {
    obs::Span snap_span("serve.snapshot");
    result.snapshot_json = render_snapshot(result);
    util::write_versioned_artifact(options_.snapshot_path, "serve-snapshot",
                                   kServeSnapshotVersion, result.snapshot_json);
    ++result.snapshots_written;
  } else {
    result.snapshot_json = render_snapshot(result);
  }
  return result;
}

}  // namespace drbw::serve
