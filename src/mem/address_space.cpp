#include "drbw/mem/address_space.hpp"

#include <algorithm>

namespace drbw::mem {

const char* placement_name(Placement p) {
  switch (p) {
    case Placement::kBind: return "bind";
    case Placement::kFirstTouch: return "first-touch";
    case Placement::kInterleave: return "interleave";
    case Placement::kColocate: return "co-locate";
    case Placement::kReplicate: return "replicate";
  }
  return "?";
}

PlacementSpec PlacementSpec::bind(topology::NodeId node) {
  PlacementSpec s;
  s.policy = Placement::kBind;
  s.bind_node = node;
  return s;
}

PlacementSpec PlacementSpec::first_touch() {
  PlacementSpec s;
  s.policy = Placement::kFirstTouch;
  return s;
}

PlacementSpec PlacementSpec::interleave(std::vector<topology::NodeId> nodes) {
  PlacementSpec s;
  s.policy = Placement::kInterleave;
  s.interleave_nodes = std::move(nodes);
  return s;
}

PlacementSpec PlacementSpec::colocate(std::vector<topology::NodeId> segment_nodes) {
  PlacementSpec s;
  s.policy = Placement::kColocate;
  s.segment_nodes = std::move(segment_nodes);
  return s;
}

PlacementSpec PlacementSpec::replicate() {
  PlacementSpec s;
  s.policy = Placement::kReplicate;
  return s;
}

AddressSpace::AddressSpace(const topology::Machine& machine)
    : machine_(machine),
      page_bytes_(machine.spec().page_bytes),
      // Start well above zero so null/small pointers are always unmapped.
      next_base_(0x10000000ULL) {}

ObjectId AddressSpace::allocate(const std::string& site_label,
                                std::uint64_t bytes,
                                const PlacementSpec& placement) {
  const ObjectId id = allocate_impl(site_label, bytes, placement, /*is_heap=*/true);
  const Region& region = region_of(id);
  pending_events_.push_back(AllocationEvent{AllocationEvent::Kind::kAlloc,
                                            region.object.site,
                                            region.object.base, bytes});
  return id;
}

ObjectId AddressSpace::allocate_static(const std::string& site_label,
                                       std::uint64_t bytes,
                                       const PlacementSpec& placement) {
  return allocate_impl(site_label, bytes, placement, /*is_heap=*/false);
}

ObjectId AddressSpace::allocate_impl(const std::string& site_label,
                                     std::uint64_t bytes,
                                     const PlacementSpec& placement,
                                     bool is_heap) {
  DRBW_CHECK_MSG(bytes > 0, "zero-byte allocation at " << site_label);
  Region region;
  region.object.id = static_cast<ObjectId>(regions_.size());
  region.object.site = AllocationSite{site_label};
  region.object.base = next_base_;
  region.object.size_bytes = bytes;
  region.object.placement = placement;
  region.object.is_heap = is_heap;

  const std::uint64_t pages = (bytes + page_bytes_ - 1) / page_bytes_;
  region.page_home.assign(pages, kUnassigned);
  assign_initial_homes(region);

  next_base_ += pages * page_bytes_;
  // Guard page gap: adjacent objects never share a page, so page-granular
  // home lookups are unambiguous (real allocators give no such guarantee,
  // but PEBS attribution in the paper is byte-granular anyway).
  next_base_ += page_bytes_;

  by_base_.emplace(region.object.base, region.object.id);
  regions_.push_back(std::move(region));
  return regions_.back().object.id;
}

void AddressSpace::assign_initial_homes(Region& region) {
  const PlacementSpec& p = region.object.placement;
  const int nodes = machine_.num_nodes();
  switch (p.policy) {
    case Placement::kBind: {
      DRBW_CHECK_MSG(p.bind_node >= 0 && p.bind_node < nodes,
                     "bind node " << p.bind_node << " out of range");
      std::fill(region.page_home.begin(), region.page_home.end(),
                static_cast<std::int16_t>(p.bind_node));
      break;
    }
    case Placement::kFirstTouch:
      // Homes stay kUnassigned until resolve_home() observes a touch.
      break;
    case Placement::kInterleave: {
      std::vector<topology::NodeId> set = p.interleave_nodes;
      if (set.empty()) {
        for (int n = 0; n < nodes; ++n) set.push_back(n);
      }
      for (topology::NodeId n : set) {
        DRBW_CHECK_MSG(n >= 0 && n < nodes, "interleave node " << n << " out of range");
      }
      for (std::size_t i = 0; i < region.page_home.size(); ++i) {
        region.page_home[i] =
            static_cast<std::int16_t>(set[i % set.size()]);
      }
      break;
    }
    case Placement::kColocate: {
      DRBW_CHECK_MSG(!p.segment_nodes.empty(),
                     "co-locate placement needs segment homes");
      const std::size_t pages = region.page_home.size();
      const std::size_t segments = p.segment_nodes.size();
      for (std::size_t i = 0; i < pages; ++i) {
        // Segment of this page by proportional split over the page range.
        const std::size_t seg = std::min(i * segments / pages, segments - 1);
        const topology::NodeId n = p.segment_nodes[seg];
        DRBW_CHECK_MSG(n >= 0 && n < nodes, "segment node " << n << " out of range");
        region.page_home[i] = static_cast<std::int16_t>(n);
      }
      break;
    }
    case Placement::kReplicate:
      // Page homes are irrelevant; resolution is always the accessing node.
      std::fill(region.page_home.begin(), region.page_home.end(),
                static_cast<std::int16_t>(0));
      break;
  }
}

void AddressSpace::free(ObjectId id) {
  Region& region = region_of(id);
  DRBW_CHECK_MSG(region.object.alive, "double free of object " << id);
  DRBW_CHECK_MSG(region.object.is_heap, "free of non-heap object " << id);
  region.object.alive = false;
  pending_events_.push_back(AllocationEvent{AllocationEvent::Kind::kFree,
                                            region.object.site,
                                            region.object.base,
                                            region.object.size_bytes});
}

AddressSpace::Region& AddressSpace::region_of(ObjectId id) {
  DRBW_CHECK_MSG(id < regions_.size(), "unknown object id " << id);
  return regions_[id];
}

const AddressSpace::Region& AddressSpace::region_of(ObjectId id) const {
  DRBW_CHECK_MSG(id < regions_.size(), "unknown object id " << id);
  return regions_[id];
}

const DataObject* AddressSpace::object_at(Addr addr) const {
  auto it = by_base_.upper_bound(addr);
  if (it == by_base_.begin()) return nullptr;
  --it;
  const Region& region = regions_[it->second];
  if (addr >= region.object.base + region.object.size_bytes) return nullptr;
  if (!region.object.alive) return nullptr;
  return &region.object;
}

const DataObject& AddressSpace::object(ObjectId id) const {
  return region_of(id).object;
}

topology::NodeId AddressSpace::resolve_home(Addr addr,
                                            topology::NodeId accessing_node) {
  const DataObject* obj = object_at(addr);
  DRBW_CHECK_MSG(obj != nullptr, "access to unmapped address 0x" << std::hex << addr);
  Region& region = regions_[obj->id];
  if (region.object.placement.policy == Placement::kReplicate) {
    return accessing_node;
  }
  const std::size_t page = (addr - region.object.base) / page_bytes_;
  std::int16_t& home = region.page_home[page];
  if (home == kUnassigned) home = static_cast<std::int16_t>(accessing_node);
  return home;
}

std::optional<topology::NodeId> AddressSpace::peek_home(
    Addr addr, topology::NodeId accessing_node) const {
  const DataObject* obj = object_at(addr);
  if (obj == nullptr) return std::nullopt;
  const Region& region = regions_[obj->id];
  if (region.object.placement.policy == Placement::kReplicate) {
    return accessing_node;
  }
  const std::size_t page = (addr - region.object.base) / page_bytes_;
  const std::int16_t home = region.page_home[page];
  if (home == kUnassigned) return std::nullopt;
  return static_cast<topology::NodeId>(home);
}

std::vector<double> AddressSpace::touch_and_home_fractions(
    ObjectId id, std::uint64_t offset_bytes, std::uint64_t span_bytes,
    topology::NodeId accessing_node) {
  Region& region = region_of(id);
  DRBW_CHECK_MSG(region.object.alive, "access to freed object " << id);
  DRBW_CHECK_MSG(span_bytes > 0, "empty span");
  DRBW_CHECK_MSG(offset_bytes + span_bytes <= region.object.size_bytes,
                 "range [" << offset_bytes << ", " << offset_bytes + span_bytes
                           << ") exceeds object of " << region.object.size_bytes
                           << " bytes");
  std::vector<double> fractions(static_cast<std::size_t>(machine_.num_nodes()),
                                0.0);
  if (region.object.placement.policy == Placement::kReplicate) {
    fractions[static_cast<std::size_t>(accessing_node)] = 1.0;
    return fractions;
  }
  const std::size_t first_page = offset_bytes / page_bytes_;
  const std::size_t last_page = (offset_bytes + span_bytes - 1) / page_bytes_;
  for (std::size_t page = first_page; page <= last_page; ++page) {
    std::int16_t& home = region.page_home[page];
    if (home == kUnassigned) home = static_cast<std::int16_t>(accessing_node);
    fractions[static_cast<std::size_t>(home)] += 1.0;
  }
  const auto pages = static_cast<double>(last_page - first_page + 1);
  for (double& f : fractions) f /= pages;
  return fractions;
}

std::vector<AllocationEvent> AddressSpace::drain_events() {
  std::vector<AllocationEvent> out;
  out.swap(pending_events_);
  return out;
}

std::vector<std::uint64_t> AddressSpace::resident_bytes_per_node() const {
  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(machine_.num_nodes()), 0);
  for (const Region& region : regions_) {
    if (!region.object.alive) continue;
    if (region.object.placement.policy == Placement::kReplicate) {
      for (auto& b : bytes) b += region.object.size_bytes;
      continue;
    }
    for (std::int16_t home : region.page_home) {
      if (home != kUnassigned) bytes[static_cast<std::size_t>(home)] += page_bytes_;
    }
  }
  return bytes;
}

}  // namespace drbw::mem
