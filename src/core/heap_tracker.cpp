#include "drbw/core/heap_tracker.hpp"

#include <algorithm>

#include "drbw/obs/metrics.hpp"

namespace drbw::core {

namespace {

struct HeapMetrics {
  obs::Counter& allocs;
  obs::Counter& frees;
  obs::Counter& alloc_bytes;
  obs::Gauge& peak_live_bytes;

  static HeapMetrics& get() {
    auto& reg = obs::Registry::global();
    static HeapMetrics m{
        reg.counter("drbw_core_heap_allocs_total",
                    "Allocation events replayed by HeapTracker"),
        reg.counter("drbw_core_heap_frees_total",
                    "Free events replayed by HeapTracker"),
        reg.counter("drbw_core_heap_alloc_bytes_total",
                    "Bytes allocated across replayed events"),
        reg.gauge("drbw_core_heap_live_bytes_peak",
                  "Largest per-object live footprint seen by any tracker"),
    };
    return m;
  }
};

}  // namespace

std::uint32_t HeapTracker::intern_site(const std::string& site) {
  const auto it = by_site_.find(site);
  if (it != by_site_.end()) return it->second;
  const auto index = static_cast<std::uint32_t>(objects_.size());
  objects_.push_back(TrackedObject{site, 0, 0, 0, 0});
  by_site_.emplace(site, index);
  return index;
}

void HeapTracker::on_event(const mem::AllocationEvent& event) {
  if (event.kind == mem::AllocationEvent::Kind::kAlloc) {
    const std::uint32_t obj = intern_site(event.site.label);
    TrackedObject& tracked = objects_[obj];
    tracked.live_bytes += event.size_bytes;
    tracked.peak_bytes = std::max(tracked.peak_bytes, tracked.live_bytes);
    ++tracked.allocations;
    HeapMetrics& metrics = HeapMetrics::get();
    metrics.allocs.add(1);
    metrics.alloc_bytes.add(event.size_bytes);
    metrics.peak_live_bytes.set_max(static_cast<double>(tracked.peak_bytes));
    ranges_[event.base] = Range{event.base + event.size_bytes, obj};
    return;
  }
  // Free: the wrapper sees only the pointer; match it to the recorded base.
  const auto it = ranges_.find(event.base);
  DRBW_CHECK_MSG(it != ranges_.end(),
                 "free of untracked pointer 0x" << std::hex << event.base);
  TrackedObject& tracked = objects_[it->second.object];
  const std::uint64_t bytes = it->second.end - event.base;
  DRBW_CHECK(tracked.live_bytes >= bytes);
  tracked.live_bytes -= bytes;
  ++tracked.frees;
  HeapMetrics::get().frees.add(1);
  ranges_.erase(it);
}

void HeapTracker::on_events(const std::vector<mem::AllocationEvent>& events) {
  for (const auto& event : events) on_event(event);
}

std::uint32_t HeapTracker::object_of(mem::Addr addr) const {
  auto it = ranges_.upper_bound(addr);
  if (it == ranges_.begin()) return kUnknownObject;
  --it;
  if (addr >= it->second.end) return kUnknownObject;
  return it->second.object;
}

const TrackedObject& HeapTracker::object(std::uint32_t index) const {
  DRBW_CHECK_MSG(index < objects_.size(), "unknown tracked object " << index);
  return objects_[index];
}

}  // namespace drbw::core
