#include "drbw/core/heap_tracker.hpp"

#include <algorithm>

namespace drbw::core {

std::uint32_t HeapTracker::intern_site(const std::string& site) {
  const auto it = by_site_.find(site);
  if (it != by_site_.end()) return it->second;
  const auto index = static_cast<std::uint32_t>(objects_.size());
  objects_.push_back(TrackedObject{site, 0, 0, 0, 0});
  by_site_.emplace(site, index);
  return index;
}

void HeapTracker::on_event(const mem::AllocationEvent& event) {
  if (event.kind == mem::AllocationEvent::Kind::kAlloc) {
    const std::uint32_t obj = intern_site(event.site.label);
    TrackedObject& tracked = objects_[obj];
    tracked.live_bytes += event.size_bytes;
    tracked.peak_bytes = std::max(tracked.peak_bytes, tracked.live_bytes);
    ++tracked.allocations;
    ranges_[event.base] = Range{event.base + event.size_bytes, obj};
    return;
  }
  // Free: the wrapper sees only the pointer; match it to the recorded base.
  const auto it = ranges_.find(event.base);
  DRBW_CHECK_MSG(it != ranges_.end(),
                 "free of untracked pointer 0x" << std::hex << event.base);
  TrackedObject& tracked = objects_[it->second.object];
  const std::uint64_t bytes = it->second.end - event.base;
  DRBW_CHECK(tracked.live_bytes >= bytes);
  tracked.live_bytes -= bytes;
  ++tracked.frees;
  ranges_.erase(it);
}

void HeapTracker::on_events(const std::vector<mem::AllocationEvent>& events) {
  for (const auto& event : events) on_event(event);
}

std::uint32_t HeapTracker::object_of(mem::Addr addr) const {
  auto it = ranges_.upper_bound(addr);
  if (it == ranges_.begin()) return kUnknownObject;
  --it;
  if (addr >= it->second.end) return kUnknownObject;
  return it->second.object;
}

const TrackedObject& HeapTracker::object(std::uint32_t index) const {
  DRBW_CHECK_MSG(index < objects_.size(), "unknown tracked object " << index);
  return objects_[index];
}

}  // namespace drbw::core
