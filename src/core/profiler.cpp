#include "drbw/core/profiler.hpp"

#include "drbw/obs/trace.hpp"

namespace drbw::core {

namespace {

struct ProfilerMetrics {
  obs::Counter& calls;
  obs::Counter& attributed;
  obs::Counter& unattributed;

  static ProfilerMetrics& get() {
    auto& reg = obs::Registry::global();
    static ProfilerMetrics m{
        reg.counter("drbw_core_profile_calls_total", "Profiler::profile calls"),
        reg.counter("drbw_core_samples_attributed_total",
                    "Samples mapped to a tracked data object"),
        reg.counter("drbw_core_samples_unattributed_total",
                    "Samples whose address matched no tracked object"),
    };
    return m;
  }
};

}  // namespace

Profiler::Profiler(const topology::Machine& machine, PageLocator& locator)
    : machine_(machine), locator_(locator) {}

ProfileResult Profiler::profile(const sim::RunResult& run) const {
  return profile(run.alloc_events, run.samples);
}

ProfileResult Profiler::profile(
    const std::vector<mem::AllocationEvent>& events,
    const std::vector<pebs::MemorySample>& samples) const {
  obs::Span span("profile");
  span.arg("samples", static_cast<double>(samples.size()));
  ProfileResult result;
  result.channels.resize(static_cast<std::size_t>(machine_.num_channels()));
  for (int i = 0; i < machine_.num_channels(); ++i) {
    result.channels[static_cast<std::size_t>(i)].channel = machine_.channel_at(i);
  }
  result.tracker.on_events(events);

  for (const pebs::MemorySample& sample : samples) {
    AttributedSample attributed;
    attributed.sample = sample;
    attributed.src_node = machine_.node_of_cpu(sample.cpu);
    attributed.home_node = locator_.locate(sample.address, attributed.src_node);
    attributed.object = result.tracker.object_of(sample.address);

    const int index = machine_.channel_index(
        topology::ChannelId{attributed.src_node, attributed.home_node});
    if (attributed.object != kUnknownObject) ++result.attributed_samples;
    ++result.total_samples;
    result.channels[static_cast<std::size_t>(index)].samples.push_back(
        attributed);
  }
  ProfilerMetrics& metrics = ProfilerMetrics::get();
  metrics.calls.add(1);
  metrics.attributed.add(result.attributed_samples);
  metrics.unattributed.add(result.total_samples - result.attributed_samples);
  return result;
}

std::vector<const AttributedSample*> ProfileResult::samples_from(
    topology::NodeId src) const {
  std::vector<const AttributedSample*> out;
  for (const ChannelProfile& channel : channels) {
    if (channel.channel.src != src) continue;
    for (const AttributedSample& s : channel.samples) out.push_back(&s);
  }
  return out;
}

}  // namespace drbw::core
