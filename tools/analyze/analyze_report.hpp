// drbw_analyze — finding aggregation, allow-comments, baseline, output.
//
// Findings from every pass are filtered through the in-source escape hatch
// (`// drbw-analyze: allow(<rule>) <reason>`, non-empty reason required) and
// then split against the committed baseline (tools/analyze/baseline.json):
// fingerprints present there are reported as suppressed, anything new fails
// the run, and baseline entries that no longer match anything are flagged
// stale so the burn-down list stays honest.  Output is ranked text plus a
// SARIF-style JSON artifact CI uploads.
#pragma once

#include <string>
#include <vector>

#include "analyze_passes.hpp"

namespace drbw::analyze {

/// One committed suppression: a finding fingerprint plus the reason it is
/// tolerated.  Fingerprints are line-free (rule|file|subject), so baselines
/// survive unrelated edits.
struct BaselineEntry {
  std::string fingerprint;
  std::string reason;
};

std::vector<BaselineEntry> load_baseline(const std::string& path);
std::vector<BaselineEntry> parse_baseline(std::string_view json_text,
                                          const std::string& origin);

/// The final, user-facing result of an analyzer run.
struct AnalysisResult {
  std::vector<Finding> fresh;       // fail the run
  std::vector<Finding> suppressed;  // matched a baseline entry
  std::vector<Finding> stale;       // rule=stale-baseline, one per dead entry
  std::size_t files_scanned = 0;

  bool clean() const { return fresh.empty() && stale.empty(); }
};

/// Applies allow-comments (suppressing matches, flagging reason-less
/// allows), ranks findings (rule severity class, then file, then line), and
/// splits against the baseline.
AnalysisResult finalize(std::vector<Finding> findings, const Model& model,
                        const std::vector<BaselineEntry>& baseline);

/// Ranked plain-text report.
std::string render_text(const AnalysisResult& result);

/// SARIF-style JSON: {"version", "runs": [{"tool", "results": [...]}]} with
/// one result per finding (fresh + suppressed + stale, each tagged with its
/// disposition).  Deterministic; CI uploads this artifact.
std::string render_json(const AnalysisResult& result);

}  // namespace drbw::analyze
