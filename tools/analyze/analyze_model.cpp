#include "analyze_model.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "drbw/util/error.hpp"
#include "drbw/util/json.hpp"
#include "drbw/util/strings.hpp"

namespace drbw::analyze {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Harvests `drbw-analyze: allow(<rule>) <reason>` from one comment's text.
void harvest_allow(std::string_view comment, std::size_t line,
                   std::vector<Allow>& out) {
  const std::size_t tag = comment.find("drbw-analyze:");
  if (tag == std::string_view::npos) return;
  std::string_view rest = comment.substr(tag);
  const std::size_t open = rest.find("allow(");
  if (open == std::string_view::npos) return;
  rest = rest.substr(open + 6);
  const std::size_t close = rest.find(')');
  if (close == std::string_view::npos) return;
  Allow allow;
  allow.line = line;
  allow.rule = trim(rest.substr(0, close));
  allow.reason = trim(rest.substr(close + 1));
  out.push_back(std::move(allow));
}

/// Parses `#include <...>` / `#include "..."` from one raw source line.
void harvest_include(std::string_view raw_line, std::size_t line,
                     std::vector<IncludeDirective>& out) {
  std::string_view s = raw_line;
  std::size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  if (i >= s.size() || s[i] != '#') return;
  ++i;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  if (s.substr(i, 7) != "include") return;
  i += 7;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  if (i >= s.size()) return;
  const char open = s[i];
  const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (close == '\0') return;
  const std::size_t end = s.find(close, i + 1);
  if (end == std::string_view::npos) return;
  IncludeDirective inc;
  inc.path = std::string(s.substr(i + 1, end - i - 1));
  inc.angled = open == '<';
  inc.line = line;
  out.push_back(std::move(inc));
}

}  // namespace

Lexed lex(std::string_view content) {
  Lexed out;
  out.blanked.assign(content.size(), ' ');
  std::size_t line = 1;
  std::size_t line_start = 0;
  std::size_t i = 0;
  const std::size_t n = content.size();
  auto keep = [&](std::size_t at) { out.blanked[at] = content[at]; };
  auto end_line = [&](std::size_t at) {
    harvest_include(content.substr(line_start, at - line_start), line,
                    out.includes);
    line_start = at + 1;
    ++line;
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      keep(i);
      end_line(i);
      ++i;
      continue;
    }
    // Line comment: blank it, harvest an allow-annotation.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && content[i] != '\n') ++i;
      harvest_allow(content.substr(start, i - start), line, out.allows);
      continue;
    }
    // Block comment: blank it; an annotation anchors at the opening line.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const std::size_t start = i;
      const std::size_t start_line = line;
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') {
          keep(i);
          end_line(i);
        }
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      harvest_allow(content.substr(start, i - start), start_line, out.allows);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"' &&
        (i == 0 || !ident_char(content[i - 1]))) {
      const std::size_t open_quote = i + 1;
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(') delim += content[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t body = j + 1;
      const std::size_t end = content.find(closer, j);
      const std::size_t stop =
          end == std::string_view::npos ? n : end + closer.size();
      Literal lit;
      lit.pos = open_quote;
      lit.line = line;
      lit.text = std::string(
          content.substr(body, (end == std::string_view::npos ? n : end) -
                                   body));
      out.literals.push_back(std::move(lit));
      for (; i < stop; ++i) {
        if (content[i] == '\n') {
          keep(i);
          end_line(i);
        }
      }
      continue;
    }
    // String / char literal.  A ' preceded by an identifier char is a C++14
    // digit separator (6'000'000), not a literal.
    if (c == '"' || (c == '\'' && (i == 0 || !ident_char(content[i - 1])))) {
      const char quote = c;
      const std::size_t open_pos = i;
      const std::size_t open_line = line;
      std::string text;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\' && i + 1 < n) {
          ++i;  // keep the escaped char, drop the backslash
          if (content[i] == 'n') {
            text += '\n';
          } else {
            text += content[i];
          }
          ++i;
          continue;
        }
        if (content[i] == '\n') {
          keep(i);
          end_line(i);
        }
        text += content[i];
        ++i;
      }
      if (i < n) ++i;  // closing quote
      if (quote == '"') {
        Literal lit;
        lit.pos = open_pos;
        lit.line = open_line;
        lit.text = std::move(text);
        out.literals.push_back(std::move(lit));
      }
      continue;
    }
    keep(i);
    ++i;
  }
  harvest_include(content.substr(line_start), line, out.includes);

  // Tokenize the blanked text: identifiers, numbers, single-char punctuation.
  const std::string& b = out.blanked;
  std::size_t tline = 1;
  for (std::size_t p = 0; p < b.size();) {
    const char c = b[p];
    if (c == '\n') {
      ++tline;
      ++p;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++p;
      continue;
    }
    Token t;
    t.pos = p;
    t.line = tline;
    if (ident_char(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = p;
      while (p < b.size() && ident_char(b[p])) ++p;
      t.kind = Token::Kind::kIdent;
      t.text = b.substr(start, p - start);
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = p;
      // Digit separators (6'000'000) are part of the number: a quote glued
      // between digits was deliberately left unblanked by the pass above.
      while (p < b.size() &&
             (ident_char(b[p]) || b[p] == '.' ||
              (b[p] == '\'' && p + 1 < b.size() && ident_char(b[p + 1])))) {
        ++p;
      }
      t.kind = Token::Kind::kNumber;
      t.text = b.substr(start, p - start);
    } else {
      t.kind = Token::Kind::kPunct;
      t.text = b.substr(p, 1);
      ++p;
    }
    out.tokens.push_back(t);
  }
  return out;
}

LayerSpec LayerSpec::parse(std::string_view json_text,
                           const std::string& origin) {
  Json doc;
  try {
    doc = Json::parse(json_text);
  } catch (const Error& e) {
    throw Error(origin + ": " + e.what(), ErrorCode::kParse);
  }
  LayerSpec spec;
  const Json* layers = doc.find("layers");
  if (layers == nullptr || !layers->is_array() || layers->as_array().empty()) {
    throw Error(origin + ": layer spec needs a non-empty \"layers\" array",
                ErrorCode::kParse);
  }
  for (const Json& entry : layers->as_array()) {
    Layer layer;
    layer.name = entry.at("name").as_string();
    for (const Json& prefix : entry.at("paths").as_array()) {
      layer.prefixes.push_back(prefix.as_string());
    }
    spec.layers.push_back(std::move(layer));
  }
  if (const Json* exceptions = doc.find("exceptions")) {
    for (const Json& entry : exceptions->as_array()) {
      Exception ex;
      ex.from = entry.at("from").as_string();
      ex.to = entry.at("to").as_string();
      ex.reason = entry.at("reason").as_string();
      if (trim(ex.reason).empty()) {
        throw Error(origin + ": layer exception " + ex.from + " -> " + ex.to +
                        " needs a non-empty reason",
                    ErrorCode::kParse);
      }
      spec.exceptions.push_back(std::move(ex));
    }
  }
  return spec;
}

LayerSpec LayerSpec::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("drbw_analyze: cannot read layer spec " + path,
                ErrorCode::kNotFound);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), path);
}

int LayerSpec::rank_of(std::string_view rel_path) const {
  int best = -1;
  std::size_t best_len = 0;
  for (std::size_t r = 0; r < layers.size(); ++r) {
    for (const std::string& prefix : layers[r].prefixes) {
      if (starts_with(rel_path, prefix) && prefix.size() >= best_len) {
        best = static_cast<int>(r);
        best_len = prefix.size();
      }
    }
  }
  return best;
}

bool LayerSpec::excepted(std::string_view from, std::string_view to) const {
  for (const Exception& ex : exceptions) {
    if (starts_with(from, ex.from) && starts_with(to, ex.to)) return true;
  }
  return false;
}

const Tu* Model::find(std::string_view rel) const {
  const auto it = by_rel.find(std::string(rel));
  return it == by_rel.end() ? nullptr : &tus[it->second];
}

Model load_tree(const std::string& root,
                const std::vector<std::string>& subdirs, const LayerSpec& spec,
                const std::vector<std::string>& skip) {
  namespace fs = std::filesystem;
  Model model;
  model.root = root;
  std::vector<fs::path> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    const std::string rel = fs::relative(file, fs::path(root)).generic_string();
    bool skipped = false;
    for (const std::string& prefix : skip) {
      if (starts_with(rel, prefix)) {
        skipped = true;
        break;
      }
    }
    if (skipped) continue;
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      throw Error("drbw_analyze: cannot read " + file.string(),
                  ErrorCode::kIo);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Tu tu;
    tu.rel = rel;
    tu.layer = spec.rank_of(rel);
    tu.lex = lex(buffer.str());
    model.by_rel.emplace(tu.rel, model.tus.size());
    model.tus.push_back(std::move(tu));
  }
  return model;
}

std::string resolve_include(const Model& model, const Tu& from,
                            const IncludeDirective& inc) {
  if (starts_with(inc.path, "drbw/")) {
    const std::string rel = "include/" + inc.path;
    if (model.find(rel) != nullptr) return rel;
    return "";
  }
  if (inc.angled) return "";  // system header
  // Bare quoted include: resolve next to the including file.
  const std::size_t slash = from.rel.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "" : from.rel.substr(0, slash + 1);
  std::string rel = dir + inc.path;
  // Normalize a single leading "../" hop (fixture trees use shallow paths).
  while (true) {
    const std::size_t up = rel.find("/../");
    if (up == std::string::npos) break;
    const std::size_t prev = rel.rfind('/', up == 0 ? 0 : up - 1);
    if (prev == std::string::npos) {
      rel = rel.substr(up + 4);
    } else {
      rel = rel.substr(0, prev + 1) + rel.substr(up + 4);
    }
  }
  if (model.find(rel) != nullptr) return rel;
  return "";
}

}  // namespace drbw::analyze
