// Registry cross-check pass.
//
// Extracts every *emitted* name from call sites over the shared token
// model — fault sites (should_inject / maybe_fail / corrupt_bits), metrics
// (Registry counter/gauge/histogram), trace counter events, obs::Span
// names, RunSession stage breadcrumbs — plus the error-token and exit-code
// tables from util/error.hpp, then cross-references them against the
// committed registry (tools/analyze/registry.json), the test suite, CI, the
// README exit-code table, and postmortem.cpp's doctor advice.
//
// Rules:
//   unregistered-name — a name is emitted but registry.json does not list
//                       it: the contract grew silently.
//   dead-registry-entry — registry.json lists a name nothing emits: either
//                       remove the entry or restore the instrumentation.
//   untested-name     — a registered fault site / metric / span is emitted
//                       but appears in no test file and no CI leg, so a
//                       regression there is invisible.
//   exit-code-drift   — util/error.hpp, registry.json, the README table,
//                       and doctor advice disagree about an exit code or an
//                       error token.
#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "analyze_passes.hpp"
#include "drbw/util/error.hpp"
#include "drbw/util/json.hpp"
#include "drbw/util/strings.hpp"

namespace drbw::analyze {
namespace {

/// The string literal that is the call's first argument: the first literal
/// after the open paren with no real token between it and the paren (so
/// `counter(\n    "name", ...)` matches but `Span span(name_var)` does not).
const Literal* literal_after(const Lexed& lex, std::size_t pos,
                             std::size_t max_distance = 400) {
  const Literal* lit = nullptr;
  for (const Literal& candidate : lex.literals) {
    if (candidate.pos > pos) {
      lit = &candidate;
      break;
    }
  }
  if (lit == nullptr || (lit->pos - pos) > max_distance) return nullptr;
  for (const Token& t : lex.tokens) {
    if (t.pos <= pos) continue;
    if (t.pos >= lit->pos) break;
    return nullptr;  // something else is the first argument
  }
  return lit;
}

bool next_is_open_paren(const Lexed& lex, std::size_t token_index) {
  return token_index + 1 < lex.tokens.size() &&
         lex.tokens[token_index + 1].text == "(";
}

/// Looks back a few tokens for a contextual marker (e.g. "Trace" before a
/// counter(...) call distinguishes a trace counter event from a metric).
bool scanback_has(const Lexed& lex, std::size_t token_index,
                  std::string_view marker, std::size_t window = 6) {
  const std::size_t start =
      token_index > window ? token_index - window : 0;
  for (std::size_t k = start; k < token_index; ++k) {
    if (lex.tokens[k].text == marker) return true;
  }
  return false;
}

/// Byte offset of the ')' matching the '(' at token index `open`, or the
/// end of the file when unbalanced.
std::size_t matching_paren_pos(const Lexed& lex, std::size_t open) {
  int depth = 0;
  for (std::size_t k = open; k < lex.tokens.size(); ++k) {
    const Token& t = lex.tokens[k];
    if (t.kind != Token::Kind::kPunct) continue;
    if (t.text == "(") ++depth;
    if (t.text == ")" && --depth == 0) return t.pos;
  }
  return lex.blanked.size();
}

bool in_layer_dirs(const std::string& rel) {
  return starts_with(rel, "src/") || starts_with(rel, "include/") ||
         starts_with(rel, "tools/");
}

bool is_test_or_bench(const std::string& rel) {
  return starts_with(rel, "tests/") || starts_with(rel, "bench/") ||
         starts_with(rel, "examples/");
}

/// Dotted lowercase site names ("pebs.sample"); rejects prose literals.
bool plausible_site_name(const std::string& text) {
  if (text.empty() || text.find('.') == std::string::npos) return false;
  for (const char c : text) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '_')) {
      return false;
    }
  }
  return true;
}

bool plausible_metric_name(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      return false;
    }
  }
  return true;
}

void note_use(std::vector<NameUse>& out, std::string name,
              const std::string& file, std::size_t line) {
  out.push_back(NameUse{std::move(name), file, line});
}

Registry::Entry parse_entry(const Json& node, const std::string& origin) {
  Registry::Entry entry;
  if (node.type() == Json::Type::kString) {
    entry.name = node.as_string();
    return entry;
  }
  entry.name = node.at("name").as_string();
  if (const Json* diag = node.find("diagnostic")) {
    entry.diagnostic = diag->as_bool();
  }
  if (const Json* advice = node.find("doctor_advice")) {
    entry.doctor_advice = advice->as_bool();
  }
  if (entry.name.empty()) {
    throw Error(origin + ": registry entry with empty name",
                ErrorCode::kParse);
  }
  return entry;
}

void parse_section(const Json& doc, const char* key,
                   std::vector<Registry::Entry>& out,
                   const std::string& origin) {
  const Json* section = doc.find(key);
  if (section == nullptr) return;
  for (const Json& node : section->as_array()) {
    out.push_back(parse_entry(node, origin));
  }
}

}  // namespace

Registry Registry::parse(std::string_view json_text,
                         const std::string& origin) {
  Json doc;
  try {
    doc = Json::parse(json_text);
  } catch (const Error& e) {
    throw Error(origin + ": " + e.what(), ErrorCode::kParse);
  }
  Registry registry;
  parse_section(doc, "fault_sites", registry.fault_sites, origin);
  parse_section(doc, "metrics", registry.metrics, origin);
  parse_section(doc, "trace_counters", registry.trace_counters, origin);
  parse_section(doc, "spans", registry.spans, origin);
  parse_section(doc, "stages", registry.stages, origin);
  parse_section(doc, "error_tokens", registry.error_tokens, origin);
  if (const Json* codes = doc.find("exit_codes")) {
    for (const Json& node : codes->as_array()) {
      ExitCode code;
      code.code = static_cast<int>(node.at("code").as_int());
      code.meaning = node.at("meaning").as_string();
      if (const Json* source = node.find("source")) {
        code.source = source->as_string();
      }
      registry.exit_codes.push_back(std::move(code));
    }
  }
  return registry;
}

Registry Registry::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("drbw_analyze: cannot read registry " + path,
                ErrorCode::kNotFound);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), path);
}

Extraction extract_names(const Model& model) {
  Extraction ex;
  for (const Tu& tu : model.tus) {
    // Emission sites live in the library + tools; tests and benches *cover*
    // names, they do not define them.
    if (!in_layer_dirs(tu.rel) || is_test_or_bench(tu.rel)) continue;
    const Lexed& lex = tu.lex;
    for (std::size_t k = 0; k < lex.tokens.size(); ++k) {
      const Token& t = lex.tokens[k];
      if (t.kind != Token::Kind::kIdent) continue;
      // obs::Span span("name") — [Span][ident][(]["name"], or a temporary
      // Span("name") — [Span][(].
      if (t.text == "Span") {
        std::size_t open_index = 0;
        if (next_is_open_paren(lex, k)) {
          open_index = k + 1;
        } else if (k + 2 < lex.tokens.size() &&
                   lex.tokens[k + 1].kind == Token::Kind::kIdent &&
                   lex.tokens[k + 2].text == "(") {
          open_index = k + 2;
        }
        if (open_index != 0) {
          if (const Literal* lit =
                  literal_after(lex, lex.tokens[open_index].pos, 64)) {
            note_use(ex.spans, lit->text, tu.rel, lit->line);
          }
        }
        continue;
      }
      if (!next_is_open_paren(lex, k)) continue;
      const std::size_t open_pos = lex.tokens[k + 1].pos;
      if (t.text == "should_inject" || t.text == "maybe_fail" ||
          t.text == "corrupt_bits") {
        if (const Literal* lit = literal_after(lex, open_pos)) {
          if (plausible_site_name(lit->text)) {
            note_use(ex.fault_sites, lit->text, tu.rel, lit->line);
          }
        }
      } else if (t.text == "write_versioned_artifact") {
        // The fault site threads through as the wrapper's *last* literal
        // argument: write_versioned_artifact(path, kind, ver, body, "site").
        const std::size_t close_pos = matching_paren_pos(lex, k + 1);
        const Literal* site = nullptr;
        for (const Literal& lit : lex.literals) {
          if (lit.pos <= open_pos || lit.pos >= close_pos) continue;
          if (plausible_site_name(lit.text)) site = &lit;
        }
        if (site != nullptr) {
          note_use(ex.fault_sites, site->text, tu.rel, site->line);
        }
      } else if (t.text == "counter" || t.text == "gauge" ||
                 t.text == "histogram") {
        if (const Literal* lit = literal_after(lex, open_pos)) {
          if (!plausible_metric_name(lit->text)) continue;
          if (scanback_has(lex, k, "Trace", 10)) {
            note_use(ex.trace_counters, lit->text, tu.rel, lit->line);
          } else {
            note_use(ex.metrics, lit->text, tu.rel, lit->line);
          }
        }
      } else if (t.text == "stage") {
        if (const Literal* lit = literal_after(lex, open_pos, 64)) {
          if (plausible_metric_name(lit->text)) {
            note_use(ex.stages, lit->text, tu.rel, lit->line);
          }
        }
      }
    }

    // util/error.hpp holds the canonical token + exit-code tables.
    if (tu.rel == "include/drbw/util/error.hpp") {
      for (std::size_t k = 0; k + 1 < lex.tokens.size(); ++k) {
        if (lex.tokens[k].text != "return") continue;
        const Token& next = lex.tokens[k + 1];
        if (next.kind == Token::Kind::kNumber) {
          // Inside exit_code_for: `case ErrorCode::kX: return N;`
          if (scanback_has(lex, k, "case", 8)) {
            ex.exit_codes.emplace_back(std::stoi(std::string(next.text)),
                                       next.line);
          }
        } else if (next.text == ";" || next.text == "\"") {
          // covered by literal scan below
        }
      }
      // Error tokens: every literal returned inside error_code_name.
      for (const Literal& lit : lex.literals) {
        if (lit.text.empty() || lit.text.find(' ') != std::string::npos) {
          continue;
        }
        bool lowercase_token = true;
        for (const char c : lit.text) {
          if (!(std::islower(static_cast<unsigned char>(c)) || c == '-')) {
            lowercase_token = false;
            break;
          }
        }
        if (lowercase_token) {
          note_use(ex.error_tokens, lit.text, tu.rel, lit.line);
        }
      }
    }
  }

  const auto sort_uses = [](std::vector<NameUse>& uses) {
    std::sort(uses.begin(), uses.end(),
              [](const NameUse& a, const NameUse& b) {
                if (a.name != b.name) return a.name < b.name;
                if (a.file != b.file) return a.file < b.file;
                return a.line < b.line;
              });
  };
  sort_uses(ex.fault_sites);
  sort_uses(ex.metrics);
  sort_uses(ex.trace_counters);
  sort_uses(ex.spans);
  sort_uses(ex.stages);
  sort_uses(ex.error_tokens);
  return ex;
}

namespace {

struct SectionCheck {
  const char* section;
  const std::vector<Registry::Entry>* registered;
  const std::vector<NameUse>* emitted;
  bool coverage_required;  // untested-name applies
};

/// Parses "| 64 | meaning |" rows from the README's exit-code table.
std::map<int, std::string> readme_exit_rows(const std::string& readme,
                                            std::size_t* table_line) {
  std::map<int, std::string> rows;
  std::size_t line_no = 0;
  bool in_table = false;
  std::istringstream is(readme);
  std::string line;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string l = trim(line);
    if (!in_table) {
      if (l.find("| code |") == 0) {
        in_table = true;
        if (*table_line == 0) *table_line = line_no;
      }
      continue;
    }
    if (l.empty() || l[0] != '|') {
      in_table = false;
      continue;
    }
    const std::vector<std::string> cells = split(l, '|');
    // "| 64 | text |" splits to ["", " 64 ", " text ", ""].
    if (cells.size() < 3) continue;
    const std::string code_text = trim(cells[1]);
    if (code_text.empty() ||
        code_text.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    rows[std::stoi(code_text)] = trim(cells[2]);
  }
  return rows;
}

}  // namespace

std::vector<Finding> check_registry(const Registry& registry,
                                    const Extraction& extraction,
                                    const RegistryContext& context) {
  std::vector<Finding> findings;

  const SectionCheck checks[] = {
      {"fault_sites", &registry.fault_sites, &extraction.fault_sites, true},
      {"metrics", &registry.metrics, &extraction.metrics, true},
      {"trace_counters", &registry.trace_counters, &extraction.trace_counters,
       false},
      {"spans", &registry.spans, &extraction.spans, true},
      {"stages", &registry.stages, &extraction.stages, false},
      {"error_tokens", &registry.error_tokens, &extraction.error_tokens,
       false},
  };

  for (const SectionCheck& check : checks) {
    std::set<std::string> registered;
    for (const Registry::Entry& entry : *check.registered) {
      registered.insert(entry.name);
    }
    std::set<std::string> emitted;
    std::map<std::string, const NameUse*> first_use;
    for (const NameUse& use : *check.emitted) {
      emitted.insert(use.name);
      first_use.emplace(use.name, &use);
    }

    for (const auto& [name, use] : first_use) {
      if (registered.count(name) == 0) {
        findings.push_back(make_finding(
            "unregistered-name", use->file, use->line,
            std::string(check.section) + ":" + name,
            std::string(check.section) + " name '" + name +
                "' is emitted here but tools/analyze/registry.json does not "
                "list it; register it (and cover it with a test) or remove "
                "the emission"));
      }
    }
    for (const Registry::Entry& entry : *check.registered) {
      if (emitted.count(entry.name) == 0) {
        findings.push_back(make_finding(
            "dead-registry-entry", "tools/analyze/registry.json", 1,
            std::string(check.section) + ":" + entry.name,
            std::string(check.section) + " entry '" + entry.name +
                "' is registered but nothing in the tree emits it; delete "
                "the entry or restore the instrumentation"));
      } else if (check.coverage_required &&
                 context.coverage_text.find(entry.name) == std::string::npos) {
        const NameUse* use = first_use.at(entry.name);
        findings.push_back(make_finding(
            "untested-name", use->file, use->line,
            std::string(check.section) + ":" + entry.name,
            std::string(check.section) + " name '" + entry.name +
                "' is emitted here but appears in no test file and no CI "
                "leg — a regression in it would be invisible; add a test or "
                "CI assertion that names it"));
      }
    }
  }

  // ---- exit-code drift -----------------------------------------------
  std::map<int, std::string> registered_codes;  // code -> meaning
  for (const Registry::ExitCode& code : registry.exit_codes) {
    registered_codes[code.code] = code.meaning;
  }
  // (a) every exit code util/error.hpp returns must be registered.
  for (const auto& [code, line] : extraction.exit_codes) {
    if (registered_codes.count(code) == 0) {
      findings.push_back(make_finding(
          "exit-code-drift", "include/drbw/util/error.hpp", line,
          "code:" + std::to_string(code),
          "exit_code_for returns " + std::to_string(code) +
              " but registry.json's exit_codes table does not list it"));
    }
  }
  // (b) every registered code with source "error.hpp" must be returned.
  std::set<int> returned;
  for (const auto& [code, line] : extraction.exit_codes) returned.insert(code);
  for (const Registry::ExitCode& code : registry.exit_codes) {
    if (code.source == "error.hpp" && returned.count(code.code) == 0) {
      findings.push_back(make_finding(
          "exit-code-drift", "tools/analyze/registry.json", 1,
          "code:" + std::to_string(code.code),
          "registry.json lists exit code " + std::to_string(code.code) +
              " as coming from util/error.hpp, but exit_code_for never "
              "returns it"));
    }
  }
  // (c) the README table must match the registry row-for-row.
  if (!context.readme_text.empty()) {
    std::size_t table_line = 0;
    const std::map<int, std::string> rows =
        readme_exit_rows(context.readme_text, &table_line);
    if (rows.empty()) {
      findings.push_back(make_finding(
          "exit-code-drift", context.readme_path, 1, "readme:no-table",
          "README has no recognizable exit-code table (expected a markdown "
          "table with a '| code |' header); regenerate it with "
          "`drbw_analyze --emit-exit-table`"));
    } else {
      for (const auto& [code, meaning] : registered_codes) {
        const auto it = rows.find(code);
        if (it == rows.end()) {
          findings.push_back(make_finding(
              "exit-code-drift", context.readme_path, table_line,
              "readme:" + std::to_string(code),
              "README exit-code table is missing code " +
                  std::to_string(code) + " ('" + meaning +
                  "'); regenerate with `drbw_analyze --emit-exit-table`"));
        } else if (it->second != meaning) {
          findings.push_back(make_finding(
              "exit-code-drift", context.readme_path, table_line,
              "readme:" + std::to_string(code),
              "README meaning for exit code " + std::to_string(code) +
                  " ('" + it->second + "') drifted from the registry ('" +
                  meaning + "'); regenerate with `drbw_analyze "
                  "--emit-exit-table`"));
        }
      }
      for (const auto& [code, meaning] : rows) {
        if (registered_codes.count(code) == 0) {
          findings.push_back(make_finding(
              "exit-code-drift", context.readme_path, table_line,
              "readme:" + std::to_string(code),
              "README exit-code table lists code " + std::to_string(code) +
                  " ('" + meaning + "') that registry.json does not know"));
        }
      }
    }
  }
  // (d) every error token that promises doctor advice must be handled in
  // postmortem.cpp (the doctor branches compare m.error_code literals).
  if (!context.postmortem_text.empty()) {
    for (const Registry::Entry& token : registry.error_tokens) {
      if (!token.doctor_advice) continue;
      if (context.postmortem_text.find("\"" + token.name + "\"") ==
          std::string::npos) {
        findings.push_back(make_finding(
            "exit-code-drift", context.postmortem_path, 1,
            "doctor:" + token.name,
            "error token '" + token.name +
                "' is registered with doctor_advice=true but "
                "postmortem.cpp's doctor() has no branch naming it"));
      }
    }
  }

  return findings;
}

std::string exit_table_markdown(const Registry& registry) {
  std::vector<Registry::ExitCode> codes = registry.exit_codes;
  std::sort(codes.begin(), codes.end(),
            [](const Registry::ExitCode& a, const Registry::ExitCode& b) {
              return a.code < b.code;
            });
  std::ostringstream os;
  os << "| code | meaning |\n|------|---------|\n";
  for (const Registry::ExitCode& code : codes) {
    os << "| " << code.code << " | " << code.meaning << " |\n";
  }
  return os.str();
}

}  // namespace drbw::analyze
