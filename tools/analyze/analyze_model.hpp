// drbw_analyze — shared whole-program model for the contract analyzer.
//
// drbw_lint checks one line at a time; the rules in tools/analyze reason
// about the *program*: the include graph against the committed layer DAG
// (layers.json), every emitted fault-site / metric / span name against the
// committed registry (registry.json), and intra-TU dataflow from unordered
// containers into emitter calls.  This header owns the model every pass
// shares: each translation unit is lexed exactly once into a token stream
// (identifiers, numbers, punctuation), its string literals (blanked from the
// token stream but kept here — registry names live in literals), its
// #include directives, and its `// drbw-analyze: allow(<rule>) <reason>`
// annotations.
//
// The passes themselves live in analyze_passes.hpp; reporting, baseline
// comparison, and SARIF-style JSON output in analyze_report.hpp.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace drbw::analyze {

/// One lexical token over the blanked source.  Literals and comments are
/// blanked before tokenization, so a token is always real code.
struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kIdent;
  std::string text;     // owned — Lexed objects are moved into the model
  std::size_t pos = 0;  // byte offset
  std::size_t line = 0;  // 1-based
};

/// A "..." string literal (contents un-escaped only for \" and \\; registry
/// names never need more).  Raw strings are captured whole.
struct Literal {
  std::string text;
  std::size_t pos = 0;  // offset of the opening quote
  std::size_t line = 0;
};

/// One #include directive.
struct IncludeDirective {
  std::string path;     // as written between the delimiters
  bool angled = false;  // <...> vs "..."
  std::size_t line = 0;
};

/// One `// drbw-analyze: allow(<rule>) <reason>` annotation.
struct Allow {
  std::size_t line = 0;
  std::string rule;
  std::string reason;  // trimmed; empty = missing
};

/// A fully lexed translation unit.
struct Lexed {
  std::string blanked;  // comments + literal bodies blanked to spaces
  std::vector<Token> tokens;
  std::vector<Literal> literals;
  std::vector<IncludeDirective> includes;
  std::vector<Allow> allows;
};

/// Lexes one file: blanks comments / string / char literals (raw strings and
/// digit separators handled), tokenizes the rest, and harvests literals,
/// includes, and allow-annotations in a single pass.
Lexed lex(std::string_view content);

/// The committed layer DAG (tools/analyze/layers.json).  Layers are listed
/// bottom-up: a file may include only files in its own or a *lower* layer.
/// `exceptions` lists individually blessed edges (each with a mandatory
/// reason) — e.g. the header-only drbw/util/error.hpp, which the fault and
/// obs bottom layers share by design.
struct LayerSpec {
  struct Layer {
    std::string name;
    std::vector<std::string> prefixes;  // repo-relative path prefixes
  };
  struct Exception {
    std::string from;  // path prefix (or exact path) of the including file
    std::string to;    // path prefix (or exact path) of the included file
    std::string reason;
  };
  std::vector<Layer> layers;  // rank = index, bottom first
  std::vector<Exception> exceptions;

  static LayerSpec load(const std::string& path);
  static LayerSpec parse(std::string_view json_text, const std::string& origin);

  /// Layer index for a repo-relative path (longest matching prefix), or -1.
  int rank_of(std::string_view rel_path) const;
  const std::string& layer_name(int rank) const {
    return layers[static_cast<std::size_t>(rank)].name;
  }
  /// True when the edge from→to is individually blessed.
  bool excepted(std::string_view from, std::string_view to) const;
};

/// One translation unit in the model.
struct Tu {
  std::string rel;   // repo-relative path, '/'-separated
  int layer = -1;    // rank in LayerSpec, -1 = unmapped
  Lexed lex;
};

/// The whole-program model: every TU under the scanned subdirectories,
/// lexed once, sorted by path (deterministic pass output).
struct Model {
  std::string root;
  std::vector<Tu> tus;
  std::map<std::string, std::size_t> by_rel;

  const Tu* find(std::string_view rel) const;
};

/// Loads every .cpp/.hpp/.h under root/<subdir> into a Model, assigning
/// layers from `spec`.  Paths under `skip` prefixes are excluded (fixture
/// trees inside tests/ must not count as the real program).
Model load_tree(const std::string& root, const std::vector<std::string>& subdirs,
                const LayerSpec& spec,
                const std::vector<std::string>& skip = {});

/// Resolves an include directive to a repo-relative path: "drbw/..." maps
/// under include/, a bare quoted name maps next to the including file.
/// Returns "" for system / external includes.
std::string resolve_include(const Model& model, const Tu& from,
                            const IncludeDirective& inc);

}  // namespace drbw::analyze
