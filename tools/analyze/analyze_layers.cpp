// Layer-DAG pass: the include graph vs the committed layer spec.
//
// Three rules:
//   layer-back-edge — a file includes a file in a *higher* layer (rank
//                     strictly greater than its own).  The finding names
//                     both layers and ranks; individually blessed edges
//                     come from layers.json's exceptions list.
//   include-cycle   — a cycle in the file-level include graph, reported
//                     with the exact chain (canonicalized to start at the
//                     lexicographically smallest member, so the report is
//                     stable under scan order).
//   unmapped-file   — a scanned file no layer prefix claims; keeps
//                     layers.json complete as the tree grows.
#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "analyze_passes.hpp"

namespace drbw::analyze {

Finding make_finding(std::string rule, std::string file, std::size_t line,
                     std::string subject, std::string message) {
  Finding f;
  f.fingerprint = rule + "|" + file + "|" + subject;
  f.rule = std::move(rule);
  f.file = std::move(file);
  f.line = line;
  f.message = std::move(message);
  return f;
}

namespace {

struct Graph {
  // Adjacency: tu index -> (target tu index, include line).
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> edges;
};

Graph build_graph(const Model& model) {
  Graph g;
  g.edges.resize(model.tus.size());
  for (std::size_t i = 0; i < model.tus.size(); ++i) {
    const Tu& tu = model.tus[i];
    for (const IncludeDirective& inc : tu.lex.includes) {
      const std::string target = resolve_include(model, tu, inc);
      if (target.empty()) continue;
      const auto it = model.by_rel.find(target);
      if (it == model.by_rel.end()) continue;
      g.edges[i].emplace_back(it->second, inc.line);
    }
  }
  return g;
}

/// Canonical form of a cycle: rotate so the lexicographically smallest
/// path comes first; the chain text is "a -> b -> c -> a".
std::string canonical_cycle(const Model& model, std::vector<std::size_t> cycle) {
  std::size_t best = 0;
  for (std::size_t k = 1; k < cycle.size(); ++k) {
    if (model.tus[cycle[k]].rel < model.tus[cycle[best]].rel) best = k;
  }
  std::rotate(cycle.begin(), cycle.begin() + static_cast<std::ptrdiff_t>(best),
              cycle.end());
  std::string chain;
  for (const std::size_t node : cycle) {
    chain += model.tus[node].rel;
    chain += " -> ";
  }
  chain += model.tus[cycle.front()].rel;
  return chain;
}

}  // namespace

LayerResult check_layers(const Model& model, const LayerSpec& spec) {
  LayerResult result;
  const Graph g = build_graph(model);

  std::set<std::pair<std::string, std::string>> layer_edges;
  for (std::size_t i = 0; i < model.tus.size(); ++i) {
    const Tu& from = model.tus[i];
    if (from.layer < 0) {
      result.findings.push_back(make_finding(
          "unmapped-file", from.rel, 1, from.rel,
          "no layer in layers.json claims this file; add its path to the "
          "right layer's \"paths\" list"));
      continue;
    }
    for (const auto& [target_idx, line] : g.edges[i]) {
      const Tu& to = model.tus[target_idx];
      if (to.layer < 0) continue;  // its own unmapped-file finding suffices
      if (from.layer != to.layer) {
        layer_edges.emplace(spec.layer_name(from.layer),
                            spec.layer_name(to.layer));
      }
      if (to.layer > from.layer && !spec.excepted(from.rel, to.rel)) {
        std::ostringstream os;
        os << "layer back-edge: " << from.rel << " (layer '"
           << spec.layer_name(from.layer) << "', rank " << from.layer
           << ") includes " << to.rel << " (layer '"
           << spec.layer_name(to.layer) << "', rank " << to.layer
           << "); chain: " << from.rel << " -> " << to.rel
           << " — a lower layer must not reach upward (add a layers.json "
              "exception only with a recorded reason)";
        result.findings.push_back(make_finding("layer-back-edge", from.rel,
                                               line, to.rel, os.str()));
      }
    }
  }
  result.layer_edges.assign(layer_edges.begin(), layer_edges.end());

  // Cycle detection: iterative DFS with colors; every back edge closes a
  // cycle, reported once by its canonical chain.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(model.tus.size(), Color::kWhite);
  std::vector<std::size_t> stack;           // current DFS path
  std::set<std::string> reported_chains;
  // Recursive lambda via explicit stack of (node, next-edge) frames.
  for (std::size_t start = 0; start < model.tus.size(); ++start) {
    if (color[start] != Color::kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> frames;  // (node, edge#)
    frames.emplace_back(start, 0);
    color[start] = Color::kGray;
    stack.push_back(start);
    while (!frames.empty()) {
      auto& [node, edge_no] = frames.back();
      if (edge_no < g.edges[node].size()) {
        const std::size_t target = g.edges[node][edge_no].first;
        ++edge_no;
        if (color[target] == Color::kWhite) {
          color[target] = Color::kGray;
          stack.push_back(target);
          frames.emplace_back(target, 0);
        } else if (color[target] == Color::kGray) {
          // stack from `target` to the top is the cycle.
          const auto it = std::find(stack.begin(), stack.end(), target);
          std::vector<std::size_t> cycle(it, stack.end());
          const std::string chain = canonical_cycle(model, cycle);
          if (reported_chains.insert(chain).second) {
            std::size_t smallest = cycle.front();
            for (const std::size_t member : cycle) {
              if (model.tus[member].rel < model.tus[smallest].rel) {
                smallest = member;
              }
            }
            result.findings.push_back(make_finding(
                "include-cycle", model.tus[smallest].rel, 1, chain,
                "include cycle: " + chain +
                    " — break the cycle by moving the shared declarations "
                    "down a layer"));
          }
        }
      } else {
        color[node] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.fingerprint < b.fingerprint;
            });
  return result;
}

std::string layer_dot(const LayerResult& result, const LayerSpec& spec) {
  std::ostringstream os;
  os << "digraph drbw_layers {\n";
  os << "  // Generated by `drbw_analyze --emit-dot` — do not edit by hand.\n";
  os << "  rankdir=BT;\n";
  os << "  node [shape=box, fontname=\"monospace\"];\n";
  for (std::size_t r = 0; r < spec.layers.size(); ++r) {
    os << "  \"" << spec.layers[r].name << "\" [label=\""
       << spec.layers[r].name << " (rank " << r << ")\"];\n";
  }
  // Edges point from the including (higher) layer down to its dependency,
  // deduped at layer level; rankdir=BT draws the bottom layer at the bottom.
  for (const auto& [from, to] : result.layer_edges) {
    const int from_rank = [&] {
      for (std::size_t r = 0; r < spec.layers.size(); ++r) {
        if (spec.layers[r].name == from) return static_cast<int>(r);
      }
      return -1;
    }();
    const int to_rank = [&] {
      for (std::size_t r = 0; r < spec.layers.size(); ++r) {
        if (spec.layers[r].name == to) return static_cast<int>(r);
      }
      return -1;
    }();
    os << "  \"" << from << "\" -> \"" << to << "\"";
    if (to_rank > from_rank) os << " [color=red, label=\"back-edge\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace drbw::analyze
