#include "analyze_report.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "drbw/util/error.hpp"
#include "drbw/util/json.hpp"
#include "drbw/util/strings.hpp"

namespace drbw::analyze {
namespace {

/// Severity class per rule — lower sorts first.  Structural violations
/// (layering) outrank contract drift, which outranks hygiene.
int severity(const std::string& rule) {
  if (rule == "layer-back-edge" || rule == "include-cycle") return 0;
  if (rule == "exit-code-drift" || rule == "unregistered-name" ||
      rule == "unmapped-file" || rule == "unordered-flow" ||
      rule == "parallel-emit-no-track" || rule == "allow-missing-reason") {
    return 1;
  }
  return 2;  // dead-registry-entry, untested-name, mutable-global-state, ...
}

const char* sarif_level(const std::string& rule) {
  return severity(rule) == 0 ? "error" : "warning";
}

/// An allow-comment reason must actually say something: at least three
/// characters with at least one letter ("." or "--" do not count).
bool meaningful_reason(const std::string& reason) {
  if (reason.size() < 3) return false;
  for (const char c : reason) {
    if (std::isalpha(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

void rank(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              const int sa = severity(a.rule);
              const int sb = severity(b.rule);
              if (sa != sb) return sa < sb;
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.fingerprint < b.fingerprint;
            });
}

}  // namespace

std::vector<BaselineEntry> parse_baseline(std::string_view json_text,
                                          const std::string& origin) {
  Json doc;
  try {
    doc = Json::parse(json_text);
  } catch (const Error& e) {
    throw Error(origin + ": " + e.what(), ErrorCode::kParse);
  }
  std::vector<BaselineEntry> entries;
  const Json* list = doc.find("suppressions");
  if (list == nullptr) return entries;
  for (const Json& node : list->as_array()) {
    BaselineEntry entry;
    entry.fingerprint = node.at("fingerprint").as_string();
    entry.reason = node.at("reason").as_string();
    if (trim(entry.reason).empty()) {
      throw Error(origin + ": baseline entry '" + entry.fingerprint +
                      "' needs a non-empty reason",
                  ErrorCode::kParse);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<BaselineEntry> load_baseline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("drbw_analyze: cannot read baseline " + path,
                ErrorCode::kNotFound);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_baseline(buffer.str(), path);
}

AnalysisResult finalize(std::vector<Finding> findings, const Model& model,
                        const std::vector<BaselineEntry>& baseline) {
  AnalysisResult result;
  result.files_scanned = model.tus.size();

  // 1. Allow-comments: `// drbw-analyze: allow(<rule>) <reason>` on the
  // finding's line or the line above suppresses it — but only with a real
  // reason; a bare allow earns its own finding and the original stands.
  std::vector<Finding> kept;
  std::set<std::pair<std::string, std::size_t>> flagged_allows;
  for (Finding& finding : findings) {
    const Tu* tu = model.find(finding.file);
    bool suppressed = false;
    if (tu != nullptr) {
      for (const Allow& allow : tu->lex.allows) {
        if (allow.rule != finding.rule) continue;
        if (allow.line != finding.line && allow.line + 1 != finding.line) {
          continue;
        }
        if (meaningful_reason(allow.reason)) {
          suppressed = true;
          break;
        }
        if (flagged_allows.emplace(finding.file, allow.line).second) {
          kept.push_back(make_finding(
              "allow-missing-reason", finding.file, allow.line,
              "allow:" + allow.rule,
              "allow(" + allow.rule +
                  ") has no usable reason — write why the rule does not "
                  "apply here, or remove the annotation"));
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(finding));
  }

  // 2. Baseline split.
  std::map<std::string, const BaselineEntry*> by_fingerprint;
  for (const BaselineEntry& entry : baseline) {
    by_fingerprint.emplace(entry.fingerprint, &entry);
  }
  std::set<std::string> matched;
  for (Finding& finding : kept) {
    if (by_fingerprint.count(finding.fingerprint)) {
      matched.insert(finding.fingerprint);
      result.suppressed.push_back(std::move(finding));
    } else {
      result.fresh.push_back(std::move(finding));
    }
  }
  for (const BaselineEntry& entry : baseline) {
    if (matched.count(entry.fingerprint)) continue;
    result.stale.push_back(make_finding(
        "stale-baseline", "tools/analyze/baseline.json", 1, entry.fingerprint,
        "baseline entry '" + entry.fingerprint +
            "' no longer matches any finding — the debt is paid; delete the "
            "entry"));
  }

  rank(result.fresh);
  rank(result.suppressed);
  rank(result.stale);
  return result;
}

std::string render_text(const AnalysisResult& result) {
  std::ostringstream os;
  os << "drbw_analyze: " << result.files_scanned << " files scanned, "
     << result.fresh.size() << " new finding(s), " << result.suppressed.size()
     << " baseline-suppressed, " << result.stale.size()
     << " stale baseline entr" << (result.stale.size() == 1 ? "y" : "ies")
     << "\n";
  if (!result.fresh.empty()) {
    os << "\nnew findings (ranked):\n";
    for (const Finding& f : result.fresh) {
      os << "  " << f.file << ":" << f.line << ": [" << f.rule << "] "
         << f.message << "\n";
    }
  }
  if (!result.stale.empty()) {
    os << "\nstale baseline entries:\n";
    for (const Finding& f : result.stale) {
      os << "  " << f.file << ": " << f.message << "\n";
    }
  }
  if (!result.suppressed.empty()) {
    os << "\nsuppressed by baseline:\n";
    for (const Finding& f : result.suppressed) {
      os << "  " << f.file << ":" << f.line << ": [" << f.rule << "] ("
         << f.fingerprint << ")\n";
    }
  }
  os << "\n" << (result.clean() ? "CLEAN" : "FAIL") << "\n";
  return os.str();
}

namespace {

Json finding_json(const Finding& f, const char* disposition) {
  Json message;
  message.set("text", f.message);
  Json artifact;
  artifact.set("uri", f.file);
  Json region;
  region.set("startLine", f.line);
  Json physical;
  physical.set("artifactLocation", std::move(artifact));
  physical.set("region", std::move(region));
  Json location;
  location.set("physicalLocation", std::move(physical));
  Json locations;
  locations.push_back(std::move(location));
  Json properties;
  properties.set("fingerprint", f.fingerprint);
  properties.set("disposition", disposition);
  Json out;
  out.set("ruleId", f.rule);
  out.set("level", sarif_level(f.rule));
  out.set("message", std::move(message));
  out.set("locations", std::move(locations));
  out.set("properties", std::move(properties));
  return out;
}

}  // namespace

std::string render_json(const AnalysisResult& result) {
  Json results;
  for (const Finding& f : result.fresh) {
    results.push_back(finding_json(f, "fresh"));
  }
  for (const Finding& f : result.stale) {
    results.push_back(finding_json(f, "stale"));
  }
  for (const Finding& f : result.suppressed) {
    results.push_back(finding_json(f, "suppressed"));
  }
  if (results.is_null()) results = JsonArray{};
  Json driver;
  driver.set("name", "drbw_analyze");
  driver.set("informationUri", "tools/analyze — see README 'Static analysis'");
  Json tool;
  tool.set("driver", std::move(driver));
  Json run;
  run.set("tool", std::move(tool));
  run.set("results", std::move(results));
  Json props;
  props.set("filesScanned", result.files_scanned);
  props.set("clean", result.clean());
  run.set("properties", std::move(props));
  Json runs;
  runs.push_back(std::move(run));
  Json doc;
  doc.set("version", "2.1.0");
  doc.set("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
  doc.set("runs", std::move(runs));
  return doc.dump(2) + "\n";
}

}  // namespace drbw::analyze
