// drbw_analyze — the three pass families over the shared Model.
//
//   1. Layer DAG     — the include graph vs tools/analyze/layers.json:
//                      back-edges (a file including a *higher* layer),
//                      include cycles (reported with the exact chain), and
//                      files no layer claims.  Also emits the graph as DOT
//                      so DESIGN.md's layer diagram is generated, not drawn.
//   2. Registry      — every fault-site / metric / span / stage name
//                      extracted from call sites vs tools/analyze/
//                      registry.json: unregistered emissions, dead registry
//                      entries, names no test or CI leg covers, and
//                      exit-code drift between util/error.hpp, the README
//                      table, and postmortem.cpp's doctor advice.
//   3. Determinism   — intra-TU dataflow beyond drbw_lint's single-line
//      dataflow        rules: unordered-container iteration flowing through
//                      locals into emitter calls, mutable namespace-scope
//                      state outside obs/fault, and thread fan-outs that
//                      emit without a TraceTrack fork-key install.
#pragma once

#include <string>
#include <vector>

#include "analyze_model.hpp"

namespace drbw::analyze {

/// One analyzer finding.  `fingerprint` is the line-free stable identity
/// (rule|file|subject) used for baseline matching, so committed baselines
/// survive unrelated line churn.
struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
  std::string fingerprint;
};

Finding make_finding(std::string rule, std::string file, std::size_t line,
                     std::string subject, std::string message);

// ---------------------------------------------------------------- layer DAG

struct LayerResult {
  std::vector<Finding> findings;
  /// Module-level edges actually observed: (from layer, to layer), deduped,
  /// sorted — the input for the DOT rendering and for tests.
  std::vector<std::pair<std::string, std::string>> layer_edges;
};

/// Runs the layer pass: back-edge, cycle, and unmapped-file detection.
LayerResult check_layers(const Model& model, const LayerSpec& spec);

/// Renders the observed layer graph as a DOT digraph (bottom layer at the
/// bottom).  Deterministic output — committed into DESIGN.md and diffed in
/// CI.
std::string layer_dot(const LayerResult& result, const LayerSpec& spec);

// ----------------------------------------------------------------- registry

/// The committed name registry (tools/analyze/registry.json).
struct Registry {
  struct Entry {
    std::string name;
    bool diagnostic = false;     // metrics only: excluded from golden export
    bool doctor_advice = false;  // error tokens: doctor() must handle it
  };
  struct ExitCode {
    int code = 0;
    std::string meaning;
    std::string source;  // "cli" or "error.hpp"
  };
  std::vector<Entry> fault_sites;
  std::vector<Entry> metrics;
  std::vector<Entry> trace_counters;
  std::vector<Entry> spans;
  std::vector<Entry> stages;
  std::vector<Entry> error_tokens;
  std::vector<ExitCode> exit_codes;

  static Registry load(const std::string& path);
  static Registry parse(std::string_view json_text, const std::string& origin);
};

/// One extracted name occurrence.
struct NameUse {
  std::string name;
  std::string file;
  std::size_t line = 0;
};

/// Everything the registry pass extracts from the model's call sites.
struct Extraction {
  std::vector<NameUse> fault_sites;     // should_inject / maybe_fail / corrupt_bits
  std::vector<NameUse> metrics;         // Registry counter/gauge/histogram
  std::vector<NameUse> trace_counters;  // Trace counter events
  std::vector<NameUse> spans;           // obs::Span constructions
  std::vector<NameUse> stages;          // RunSession::stage breadcrumbs
  std::vector<NameUse> error_tokens;    // util/error.hpp error_code_name
  /// exit codes returned by util/error.hpp's exit_code_for
  std::vector<std::pair<int, std::size_t>> exit_codes;  // (code, line)
};

Extraction extract_names(const Model& model);

/// Inputs the registry cross-check needs beyond the model.
struct RegistryContext {
  /// Concatenated text of tests/*.cpp + tests/CMakeLists.txt + ci.yml —
  /// a name is "covered" when it appears here verbatim.
  std::string coverage_text;
  /// Raw README.md text (for the exit-code table drift check) and its path.
  std::string readme_text;
  std::string readme_path = "README.md";
  /// Raw postmortem.cpp text (doctor-advice drift check) and its path.
  std::string postmortem_text;
  std::string postmortem_path = "src/report/postmortem.cpp";
};

std::vector<Finding> check_registry(const Registry& registry,
                                    const Extraction& extraction,
                                    const RegistryContext& context);

/// Renders the CLI exit-code table as Markdown from the registry — the
/// generated source of README.md's table (`drbw_analyze --emit-exit-table`).
std::string exit_table_markdown(const Registry& registry);

// ------------------------------------------------------ determinism dataflow

std::vector<Finding> check_dataflow(const Model& model);

}  // namespace drbw::analyze
