#!/bin/sh
# Generated-docs drift check: the committed README exit-code table and the
# DESIGN.md layer diagram must match what drbw_analyze generates from the
# committed registry.json / layers.json.  Both blocks are delimited by
# `drbw-analyze:<name>:begin` / `:end` HTML-comment markers; code-fence
# lines inside a block are skipped so the DOT can live in a ```dot fence.
#
# Usage: check_docs.sh <drbw_analyze binary> [repo root]
set -eu

bin=$1
root=${2:-.}

extract() { # <file> <marker name>
  awk -v m="$2" '
    index($0, "drbw-analyze:" m ":begin") { on = 1; next }
    index($0, "drbw-analyze:" m ":end")   { on = 0 }
    on && $0 !~ /^```/ { print }
  ' "$1"
}

status=0

"$bin" --root "$root" --emit-exit-table > "${TMPDIR:-/tmp}/drbw_exit_table.$$"
if ! extract "$root/README.md" exit-table \
    | diff -u "${TMPDIR:-/tmp}/drbw_exit_table.$$" -; then
  echo "README.md exit-code table drifted from registry.json;" \
       "regenerate the block with: drbw_analyze --emit-exit-table" >&2
  status=1
fi
rm -f "${TMPDIR:-/tmp}/drbw_exit_table.$$"

"$bin" --root "$root" --emit-dot > "${TMPDIR:-/tmp}/drbw_layer_dot.$$"
if ! extract "$root/DESIGN.md" layer-dot \
    | diff -u "${TMPDIR:-/tmp}/drbw_layer_dot.$$" -; then
  echo "DESIGN.md layer diagram drifted from the observed include graph;" \
       "regenerate the block with: drbw_analyze --emit-dot" >&2
  status=1
fi
rm -f "${TMPDIR:-/tmp}/drbw_layer_dot.$$"

exit $status
