// drbw_analyze — whole-program contract analyzer for DR-BW.
//
//   drbw_analyze [--root DIR] [--layers F] [--registry F] [--baseline F]
//                [--json-out F] [--emit-dot] [--emit-exit-table]
//                [--max-findings N]
//
// Lexes every translation unit under include/, src/, tools/ and tests/ once
// and runs three pass families over the shared model: the include graph
// against the committed layer DAG (tools/analyze/layers.json), every emitted
// fault-site / metric / span / stage name against the committed registry
// (tools/analyze/registry.json) plus the test suite and CI, and the
// determinism dataflow rules.  Findings are filtered through in-source
// `// drbw-analyze: allow(<rule>) <reason>` annotations and the committed
// baseline (tools/analyze/baseline.json); anything new fails the run.
//
// Exit codes: 0 clean, 1 new or stale findings, 2 internal error.
// `--emit-dot` and `--emit-exit-table` print the generated DESIGN.md layer
// diagram / README exit-code table instead of analyzing.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analyze_model.hpp"
#include "analyze_passes.hpp"
#include "analyze_report.hpp"
#include "drbw/util/cli.hpp"
#include "drbw/util/error.hpp"
#include "drbw/util/strings.hpp"

namespace {

std::string slurp_if_exists(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace drbw;
  namespace fs = std::filesystem;
  ArgParser parser("drbw_analyze",
                   "Whole-program contract analyzer: layer DAG, name "
                   "registry, determinism dataflow (see README — Static "
                   "analysis)");
  parser.add_option("root", "repository root to scan", ".");
  parser.add_option("layers", "layer spec (default <root>/tools/analyze/layers.json)", "");
  parser.add_option("registry", "name registry (default <root>/tools/analyze/registry.json)", "");
  parser.add_option("baseline", "suppression baseline (default <root>/tools/analyze/baseline.json; missing file = empty)", "");
  parser.add_option("json-out", "write the SARIF-style findings artifact here", "");
  parser.add_option("max-findings", "truncate text output after N findings", "200");
  parser.add_flag("emit-dot", "print the layer graph as DOT and exit");
  parser.add_flag("emit-exit-table", "print the README exit-code table and exit");

  try {
    if (!parser.parse(argc, argv)) return 0;
    const fs::path root = parser.option("root");
    const auto path_or = [&](const char* opt, const char* fallback) {
      const std::string v = parser.option(opt);
      return v.empty() ? (root / fallback).string() : v;
    };

    const analyze::LayerSpec spec =
        analyze::LayerSpec::load(path_or("layers", "tools/analyze/layers.json"));
    const analyze::Registry registry = analyze::Registry::load(
        path_or("registry", "tools/analyze/registry.json"));

    if (parser.flag("emit-exit-table")) {
      std::cout << analyze::exit_table_markdown(registry);
      return 0;
    }

    // Fixture trees under tests/analyze/ are inputs for analyze_test, not
    // part of the program; tools/analyze itself is scanned like any layer.
    const analyze::Model model = analyze::load_tree(
        root.string(), {"include", "src", "tools", "tests"}, spec,
        {"tests/analyze/"});

    const analyze::LayerResult layers = analyze::check_layers(model, spec);
    if (parser.flag("emit-dot")) {
      std::cout << analyze::layer_dot(layers, spec);
      return 0;
    }

    analyze::RegistryContext context;
    for (const analyze::Tu& tu : model.tus) {
      if (drbw::starts_with(tu.rel, "tests/")) {
        context.coverage_text += slurp_if_exists(root / tu.rel);
      }
    }
    context.coverage_text += slurp_if_exists(root / "tests/CMakeLists.txt");
    context.coverage_text +=
        slurp_if_exists(root / ".github/workflows/ci.yml");
    context.readme_text = slurp_if_exists(root / "README.md");
    context.postmortem_text =
        slurp_if_exists(root / "src/report/postmortem.cpp");

    std::vector<analyze::Finding> findings = layers.findings;
    const analyze::Extraction extraction = analyze::extract_names(model);
    for (analyze::Finding& f :
         analyze::check_registry(registry, extraction, context)) {
      findings.push_back(std::move(f));
    }
    for (analyze::Finding& f : analyze::check_dataflow(model)) {
      findings.push_back(std::move(f));
    }

    std::vector<analyze::BaselineEntry> baseline;
    const std::string baseline_path =
        path_or("baseline", "tools/analyze/baseline.json");
    if (fs::exists(baseline_path)) {
      baseline = analyze::load_baseline(baseline_path);
    }

    const analyze::AnalysisResult result =
        analyze::finalize(std::move(findings), model, baseline);

    const std::string json_out = parser.option("json-out");
    if (!json_out.empty()) {
      std::ofstream out(json_out, std::ios::binary);
      if (!out) {
        throw Error("drbw_analyze: cannot write " + json_out, ErrorCode::kIo);
      }
      out << analyze::render_json(result);
    }

    const auto limit =
        static_cast<std::size_t>(parser.option_int("max-findings"));
    analyze::AnalysisResult shown = result;
    if (shown.fresh.size() > limit) {
      const std::size_t dropped = shown.fresh.size() - limit;
      shown.fresh.resize(limit);
      std::cout << render_text(shown) << "... and " << dropped
                << " more new finding(s)\n";
    } else {
      std::cout << render_text(shown);
    }
    return result.clean() ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "drbw_analyze: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "drbw_analyze: internal error: " << e.what() << "\n";
    return 2;
  }
}
