// Determinism dataflow pass — intra-TU, token-level.
//
// Three rules, all about output that must not depend on hash-table order or
// scheduling:
//   unordered-flow         — a range-for over an unordered container whose
//                            body emits (write/save/render/...) directly, or
//                            pushes into a local that is later passed to an
//                            emitter without an intervening sort.
//   mutable-global-state   — a mutable namespace-scope variable outside the
//                            obs/ and fault/ layers (the two blessed
//                            process-wide singletons).
//   parallel-emit-no-track — a lambda handed to std::thread / std::async
//                            that emits spans or metrics without installing
//                            an obs::TraceTrack fork key first (TaskPool
//                            installs one internally; raw threads must too).
#include <algorithm>
#include <set>
#include <sstream>

#include "analyze_passes.hpp"
#include "drbw/util/strings.hpp"

namespace drbw::analyze {
namespace {

const char* const kUnorderedTypes[] = {"unordered_map", "unordered_set",
                                       "unordered_multimap",
                                       "unordered_multiset"};

/// Identifiers that move data out of the process (or into a report): calling
/// one inside hash-order iteration makes the output order nondeterministic.
const char* const kEmitters[] = {"write", "save",  "render", "print",
                                 "dump",  "emit",  "add_row", "note",
                                 "counter", "gauge", "histogram"};

bool is_unordered_type(const std::string& text) {
  for (const char* t : kUnorderedTypes) {
    if (text == t) return true;
  }
  return false;
}

bool is_emitter(const std::string& text) {
  for (const char* e : kEmitters) {
    if (text == e) return true;
  }
  return false;
}

/// Index of the punct token matching tokens[open] ('(' / '{' / '['), or
/// tokens.size() when unbalanced.
std::size_t match(const std::vector<Token>& tokens, std::size_t open) {
  const std::string& open_text = tokens[open].text;
  const char open_c = open_text[0];
  const char close_c = open_c == '(' ? ')' : (open_c == '{' ? '}' : ']');
  int depth = 0;
  for (std::size_t k = open; k < tokens.size(); ++k) {
    if (tokens[k].kind != Token::Kind::kPunct) continue;
    if (tokens[k].text[0] == open_c) ++depth;
    if (tokens[k].text[0] == close_c && --depth == 0) return k;
  }
  return tokens.size();
}

/// Variable names in this TU declared with an unordered container type
/// (locals, parameters, members alike — the next identifier after the
/// closing template angle).
std::set<std::string> unordered_vars(const std::vector<Token>& tokens) {
  std::set<std::string> vars;
  for (std::size_t k = 0; k < tokens.size(); ++k) {
    if (tokens[k].kind != Token::Kind::kIdent ||
        !is_unordered_type(tokens[k].text)) {
      continue;
    }
    std::size_t j = k + 1;
    if (j >= tokens.size() || tokens[j].text != "<") continue;
    int depth = 0;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].kind != Token::Kind::kPunct) continue;
      if (tokens[j].text[0] == '<') ++depth;
      if (tokens[j].text[0] == '>' && --depth == 0) break;
    }
    // Skip ref/pointer/const decoration, then take the declared name; a name
    // followed by '(' is a function returning the container, not a variable.
    for (++j; j < tokens.size(); ++j) {
      const Token& t = tokens[j];
      if (t.kind == Token::Kind::kPunct &&
          (t.text == "&" || t.text == "*")) {
        continue;
      }
      if (t.kind == Token::Kind::kIdent && t.text == "const") continue;
      break;
    }
    if (j + 1 < tokens.size() && tokens[j].kind == Token::Kind::kIdent &&
        tokens[j + 1].text != "(") {
      vars.insert(tokens[j].text);
    }
  }
  return vars;
}

struct RangeFor {
  std::string range_var;   // the container being iterated
  std::string loop_var;    // the element binding
  std::size_t body_begin = 0;  // token index of '{'
  std::size_t body_end = 0;    // matching '}'
  std::size_t line = 0;
};

/// All range-for loops whose range expression names one of `vars`.
std::vector<RangeFor> unordered_loops(const std::vector<Token>& tokens,
                                      const std::set<std::string>& vars) {
  std::vector<RangeFor> loops;
  for (std::size_t k = 0; k + 1 < tokens.size(); ++k) {
    if (tokens[k].kind != Token::Kind::kIdent || tokens[k].text != "for" ||
        tokens[k + 1].text != "(") {
      continue;
    }
    const std::size_t open = k + 1;
    const std::size_t close = match(tokens, open);
    if (close >= tokens.size()) continue;
    // A range-for has a ':' at paren depth 1 (':' from '::' appears as two
    // adjacent punct tokens — require isolation).
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = open; j <= close; ++j) {
      if (tokens[j].kind != Token::Kind::kPunct) continue;
      const char c = tokens[j].text[0];
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ':' && depth == 1) {
        const bool glued_prev =
            j > 0 && tokens[j - 1].text == ":" &&
            tokens[j - 1].pos + 1 == tokens[j].pos;
        const bool glued_next =
            j + 1 < tokens.size() && tokens[j + 1].text == ":" &&
            tokens[j].pos + 1 == tokens[j + 1].pos;
        if (!glued_prev && !glued_next) {
          colon = j;
          break;
        }
      }
    }
    if (colon == 0) continue;
    RangeFor loop;
    loop.line = tokens[k].line;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (tokens[j].kind == Token::Kind::kIdent && vars.count(tokens[j].text)) {
        loop.range_var = tokens[j].text;
        break;
      }
    }
    if (loop.range_var.empty()) continue;
    for (std::size_t j = colon; j-- > open;) {
      if (tokens[j].kind == Token::Kind::kIdent && tokens[j].text != "const" &&
          tokens[j].text != "auto") {
        loop.loop_var = tokens[j].text;
        break;
      }
    }
    if (close + 1 >= tokens.size() || tokens[close + 1].text != "{") continue;
    loop.body_begin = close + 1;
    loop.body_end = match(tokens, loop.body_begin);
    if (loop.body_end >= tokens.size()) continue;
    loops.push_back(std::move(loop));
  }
  return loops;
}

void check_unordered_flow(const Tu& tu, std::vector<Finding>& findings) {
  const std::vector<Token>& tokens = tu.lex.tokens;
  const std::set<std::string> vars = unordered_vars(tokens);
  if (vars.empty()) return;

  // Carrier -> (container it was filled from, fill line).
  std::map<std::string, std::pair<std::string, std::size_t>> tainted;

  for (const RangeFor& loop : unordered_loops(tokens, vars)) {
    for (std::size_t j = loop.body_begin + 1; j < loop.body_end; ++j) {
      const Token& t = tokens[j];
      if (t.kind != Token::Kind::kIdent || j + 1 >= tokens.size() ||
          tokens[j + 1].text != "(") {
        continue;
      }
      if (is_emitter(t.text)) {
        findings.push_back(make_finding(
            "unordered-flow", tu.rel, t.line,
            loop.range_var + ":" + t.text,
            "'" + t.text + "' is called while iterating unordered container "
            "'" + loop.range_var + "' (range-for at line " +
                std::to_string(loop.line) +
                ") — hash order leaks into the output; collect into a "
                "vector and sort first"));
      } else if (t.text == "push_back" || t.text == "emplace_back" ||
                 t.text == "insert") {
        // `carrier.push_back(...)` — the receiver is two tokens back.
        if (j >= 2 && tokens[j - 1].text == "." &&
            tokens[j - 2].kind == Token::Kind::kIdent) {
          tainted.emplace(tokens[j - 2].text,
                          std::make_pair(loop.range_var, t.line));
        }
      }
    }
    // Streaming inside the loop body counts as emission too: two '<' punct
    // tokens at adjacent byte offsets form `<<`.
    for (std::size_t j = loop.body_begin + 1; j + 1 < loop.body_end; ++j) {
      if (tokens[j].text == "<" && tokens[j + 1].text == "<" &&
          tokens[j].pos + 1 == tokens[j + 1].pos) {
        findings.push_back(make_finding(
            "unordered-flow", tu.rel, tokens[j].line,
            loop.range_var + ":<<",
            "stream output inside iteration of unordered container '" +
                loop.range_var + "' (range-for at line " +
                std::to_string(loop.line) +
                ") — hash order leaks into the output; collect into a "
                "vector and sort first"));
        break;
      }
    }
  }

  if (tainted.empty()) return;
  // One forward pass: sort(carrier...) launders the taint; an emitter call
  // whose arguments name a still-tainted carrier is a finding.
  for (std::size_t k = 0; k + 1 < tokens.size(); ++k) {
    if (tokens[k].kind != Token::Kind::kIdent || tokens[k + 1].text != "(") {
      continue;
    }
    const std::size_t close = match(tokens, k + 1);
    if (close >= tokens.size()) continue;
    const bool is_sort =
        tokens[k].text == "sort" || tokens[k].text == "stable_sort";
    const bool is_emit = is_emitter(tokens[k].text);
    if (!is_sort && !is_emit) continue;
    for (std::size_t j = k + 2; j < close; ++j) {
      if (tokens[j].kind != Token::Kind::kIdent) continue;
      const auto it = tainted.find(tokens[j].text);
      if (it == tainted.end()) continue;
      if (is_sort) {
        tainted.erase(it);
      } else {
        findings.push_back(make_finding(
            "unordered-flow", tu.rel, tokens[k].line,
            it->first + ":" + tokens[k].text,
            "'" + it->first + "' was filled from unordered container '" +
                it->second.first + "' (line " +
                std::to_string(it->second.second) + ") and reaches '" +
                tokens[k].text + "' unsorted — sort it before emitting"));
        tainted.erase(it);
      }
      break;
    }
  }
}

// ------------------------------------------------- mutable-global-state

bool is_exempt_layer(const std::string& rel) {
  return starts_with(rel, "include/drbw/obs") || starts_with(rel, "src/obs") ||
         starts_with(rel, "include/drbw/fault") ||
         starts_with(rel, "src/fault");
}

/// Synchronization primitives are not observable state.
bool statement_is_sync_primitive(const std::vector<const Token*>& stmt) {
  for (const Token* t : stmt) {
    if (t->text == "mutex" || t->text == "once_flag" ||
        t->text == "condition_variable") {
      return true;
    }
  }
  return false;
}

void check_globals(const Tu& tu, std::vector<Finding>& findings) {
  if (is_exempt_layer(tu.rel)) return;
  const std::vector<Token>& tokens = tu.lex.tokens;

  // Brace classification stack: 'n' namespace, 't' type, 'c' code.
  std::vector<char> braces;
  std::vector<const Token*> stmt;  // tokens since last ;/{/} at this level

  const auto at_namespace_scope = [&] {
    for (const char b : braces) {
      if (b != 'n') return false;
    }
    return true;
  };

  const auto flag_statement = [&](std::size_t line) {
    // Needs at least a type and a name.
    std::size_t idents = 0;
    for (const Token* t : stmt) {
      if (t->kind == Token::Kind::kIdent) ++idents;
    }
    if (idents < 2) return;
    static const char* const kSkipKeywords[] = {
        "using", "typedef", "extern",   "template", "friend",  "operator",
        "const", "constexpr", "consteval", "constinit", "struct", "class",
        "enum",  "union",   "namespace", "static_assert", "return"};
    for (const Token* t : stmt) {
      for (const char* kw : kSkipKeywords) {
        if (t->text == kw) return;
      }
    }
    if (statement_is_sync_primitive(stmt)) return;
    // A '(' before any '=' means a function declaration/definition.
    for (const Token* t : stmt) {
      if (t->text == "=") break;
      if (t->text == "(") return;
    }
    // The declared name: last identifier before '=', '{', '[' or end.
    std::string name;
    for (const Token* t : stmt) {
      if (t->text == "=" || t->text == "{" || t->text == "[") break;
      if (t->kind == Token::Kind::kIdent) name = t->text;
    }
    if (name.empty()) return;
    findings.push_back(make_finding(
        "mutable-global-state", tu.rel, line, name,
        "mutable namespace-scope variable '" + name +
            "' — process-wide mutable state outside obs/ and fault/ makes "
            "runs order-dependent; make it const/constexpr, or pass it "
            "explicitly"));
  };

  for (std::size_t k = 0; k < tokens.size(); ++k) {
    const Token& t = tokens[k];
    if (t.kind == Token::Kind::kPunct && t.text == "{") {
      // Classify by the introducer statement collected so far.
      char kind = 'c';
      bool saw_paren = false;
      for (const Token* s : stmt) {
        if (s->text == "namespace") kind = 'n';
        if (s->text == "(") saw_paren = true;
        if ((s->text == "struct" || s->text == "class" ||
             s->text == "union" || s->text == "enum") &&
            !saw_paren) {
          kind = 't';
        }
      }
      if (kind == 'c' && !saw_paren && at_namespace_scope()) {
        // `Foo g{...};` — brace-init of a namespace-scope variable.
        flag_statement(t.line);
      }
      braces.push_back(kind);
      stmt.clear();
      continue;
    }
    if (t.kind == Token::Kind::kPunct && t.text == "}") {
      if (!braces.empty()) braces.pop_back();
      stmt.clear();
      continue;
    }
    if (t.kind == Token::Kind::kPunct && t.text == ";") {
      if (at_namespace_scope() && !stmt.empty()) {
        // Only initialized (`=`) or plain declarations reach here; brace
        // inits were handled at '{'.
        flag_statement(stmt.front()->line);
      }
      stmt.clear();
      continue;
    }
    if (at_namespace_scope() || (t.kind == Token::Kind::kPunct &&
                                 (t.text == "(" || t.text == ")"))) {
      stmt.push_back(&t);
    } else if (!braces.empty() && braces.back() != 'n') {
      // Inside code/type braces we only track enough to classify nested '{'.
      stmt.push_back(&t);
    }
  }
}

// --------------------------------------------- parallel-emit-no-track

void check_parallel_emit(const Tu& tu, std::vector<Finding>& findings) {
  const std::vector<Token>& tokens = tu.lex.tokens;
  for (std::size_t k = 0; k + 1 < tokens.size(); ++k) {
    const Token& t = tokens[k];
    if (t.kind != Token::Kind::kIdent ||
        (t.text != "thread" && t.text != "jthread" && t.text != "async")) {
      continue;
    }
    // Temporary `thread(...)` or named `thread worker(...)` both spawn.
    std::size_t open = k + 1;
    if (tokens[open].kind == Token::Kind::kIdent && open + 1 < tokens.size()) {
      ++open;
    }
    if (tokens[open].text != "(") continue;
    const std::size_t close = match(tokens, open);
    if (close >= tokens.size()) continue;
    bool has_track = false;
    std::string emit_name;
    std::size_t emit_line = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (tokens[j].kind != Token::Kind::kIdent) continue;
      if (tokens[j].text == "TraceTrack") has_track = true;
      if (tokens[j].text == "Span" || tokens[j].text == "counter" ||
          tokens[j].text == "gauge" || tokens[j].text == "histogram" ||
          tokens[j].text == "note") {
        // Direct call `counter(...)`, temporary `Span(...)`, or a named
        // RAII guard `Span span(...)`.
        const bool direct = j + 1 < close && tokens[j + 1].text == "(";
        const bool named = j + 2 < close &&
                           tokens[j + 1].kind == Token::Kind::kIdent &&
                           tokens[j + 2].text == "(";
        if ((direct || named) && emit_name.empty()) {
          emit_name = tokens[j].text;
          emit_line = tokens[j].line;
        }
      }
    }
    if (!emit_name.empty() && !has_track) {
      findings.push_back(make_finding(
          "parallel-emit-no-track", tu.rel, emit_line,
          t.text + ":" + emit_name,
          "lambda passed to std::" + t.text + " emits via '" + emit_name +
              "' without installing an obs::TraceTrack fork key — spans and "
              "metrics from this thread will interleave nondeterministically; "
              "construct obs::TraceTrack at the top of the lambda (TaskPool "
              "does this for you)"));
    }
  }
}

}  // namespace

std::vector<Finding> check_dataflow(const Model& model) {
  std::vector<Finding> findings;
  for (const Tu& tu : model.tus) {
    // The analyzer reasons about the library + tools; tests exercise
    // nondeterminism on purpose.
    if (starts_with(tu.rel, "tests/") || starts_with(tu.rel, "bench/")) {
      continue;
    }
    check_unordered_flow(tu, findings);
    check_globals(tu, findings);
    check_parallel_emit(tu, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.fingerprint < b.fingerprint;
            });
  return findings;
}

}  // namespace drbw::analyze
