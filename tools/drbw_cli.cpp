// drbw — the command-line front-end to the DR-BW reproduction.
//
//   drbw train    [--seed N] [--out model.json]
//       Collect the Table II mini-program runs and train the classifier.
//
//   drbw record   --benchmark NAME [--input I] [--config Tt-Nn]
//                 [--placement original|interleave|colocate|replicate]
//                 [--out trace.csv] [--seed N] [--format csv|binary]
//                 [--shards N] [--jobs N]
//       Run a proxy benchmark on the simulated machine with DR-BW attached
//       and write the PEBS sample trace + allocation events.  --format
//       binary writes the compact v3 body (10-100x faster to load);
//       --shards N splits the trace into N per-worker artifacts behind a
//       shard-set index at --out, written in parallel across --jobs.
//
//   drbw analyze  --trace trace.csv [--model model.json] [--windows N]
//                 [--jobs N] [--expect-trace-version V]
//       Offline analysis of a recorded trace: per-channel verdicts,
//       Contribution Fractions, and optimization advice.  Sharded sets are
//       detected from the index header and loaded across --jobs workers
//       (the merged trace is byte-identical at any value).
//       --expect-trace-version V rejects artifacts newer than vV with the
//       version-skew exit code (69).  NOTE: offline page-home lookups need
//       the recording address space, so analyze re-materializes the
//       benchmark's layout from the trace's allocation events
//       (bind-to-node-0 fallback for unknown ranges).
//
//   drbw explain  --trace trace.csv [--model model.json] [--windows N]
//                 [--out explain.json] [--report FILE] [--jobs N]
//       Model observability for a recorded trace: every windowed channel
//       verdict comes back with its exact decision path through the tree,
//       a leaf-purity confidence score, and Saabas-style per-feature
//       attribution.  Writes a checksummed `#drbw-explain v1` JSON artifact
//       (decision-path frequency and attribution aggregates included) and,
//       with --report, a per-window Markdown report.  Byte-identical at any
//       --jobs value.
//
//   drbw serve    --replay trace.csv [--model model.json] [--clients N]
//                 [--queue-depth D] [--overload block|shed-oldest|reject]
//                 [--window-cycles W] [--drain-rate R] [--max-cycles C]
//                 [--max-retries K] [--breaker-threshold K]
//                 [--snapshot-out FILE] [--snapshot-every N]
//                 [--drift-threshold F] [--jobs N]
//       Online contention detection: replay a recorded trace as N simulated
//       client streams through bounded ingest queues, sliding-window
//       featurization, and incremental classification.  Overload behaviour
//       is an explicit policy; failed operations retry with deterministic
//       backoff and a circuit breaker quarantines misbehaving clients.
//       With a missing/corrupt --model the server degrades to pass-through
//       telemetry and still exits 0 (the manifest records degraded=true).
//       A checksummed serve_snapshot.json lands in --run-dir either way.
//       Models saved at format v3 embed their training distribution; the
//       server then measures per-client PSI drift against it, records a
//       windowed contention timeline in the snapshot, and --drift-threshold
//       F marks the run drift-suspected (typed, never fatal — the manifest
//       records drift="suspected" and `drbw doctor` surfaces it).  Older
//       models still serve with drift reported unavailable.
//
//   drbw convert  --in trace.csv --out trace.bin [--format csv|binary]
//                 [--shards N] [--jobs N]
//       Re-encode a trace artifact: csv <-> binary, shard or unshard.  The
//       loaded records round-trip exactly, so converting down to csv v2 is
//       the escape hatch for consumers pinned to the older format.
//
//   drbw inspect  --model model.json
//       Pretty-print a trained model (Fig. 3 style).
//
//   drbw topology [--machine xeon|opteron]
//       Print the machine description and channel table.
//
//   drbw stats    --trace obs_trace.json [--width N] [--top N] [--serve]
//       Render the per-epoch channel-utilization ASCII timeline from a trace
//       produced with --trace-out.  With --serve the input is a
//       serve_snapshot.json instead and the windowed contention timeline is
//       rendered (classified-rmc fraction, confidence p50, drift score).
//
//   drbw doctor   [run-dir]
//       Post-mortem: load the run manifest (run.json) and flight dump
//       (flight.log) a previous run left in run-dir and print a ranked
//       diagnosis.  Diagnosing a failed run successfully exits 0.
//
//   drbw perf diff <baseline/run.json> <after/run.json>... [--threshold F]
//       Compare span statistics and metric counters between run manifests:
//       the first is the baseline, every following manifest is diffed
//       against it.  Exits 3 when any comparison regressed past the
//       threshold (default 0.25 = +25%), which CI uses as a perf gate.
//
//   drbw fleet <root-dir> [--baseline run.json] [--threshold F]
//              [--filter status=ok|failed] [--top N] [--jobs N]
//              [--out report.md] [--json-out report.json]
//              [--flame-out profile.folded]
//       Aggregate every run dir under root-dir (recursively) into a fleet
//       report: outcome histogram, span-time distributions, fault-fire and
//       quarantine tallies; corrupt manifests are quarantined into the
//       report, never fatal.  --baseline perf-diffs every passing run
//       against the given manifest and exits 3 when any regresses;
//       --flame-out merges every run's flight.log spans into one
//       collapsed-stack profile.  All outputs are byte-identical at any
//       --jobs value.
//
//   drbw flame <run-dir|trace> [--out FILE]
//       Fold one run's deterministic spans into collapsed-stack format
//       (`stage;substage;span weight` — what flamegraph.pl and speedscope
//       ingest).  A directory folds its flight.log; a file is either a
//       flight dump or a trace_event JSON from --trace-out.
//
// train/record/analyze/serve additionally accept --trace-out FILE (Chrome
// trace_event JSON), --metrics-out FILE (.json => JSON, else Prometheus
// text), --timing sim|wall (wall-clock span durations; marks the trace
// non-golden), --inject-faults SPEC (deterministic fault injection,
// grammar: seed=N,site:kind:rate,...), and --run-dir DIR (where the run
// manifest `run.json` and flight dump `flight.log` land; default ".").
// analyze also accepts --load-mode strict|lenient and --max-bad-fraction F
// (lenient loads quarantine malformed trace records and escalate past the
// cap).
//
// Every train/record/analyze run leaves a provenance manifest behind, and on
// any typed failure the flight recorder's last events are dumped next to it
// before the process exits — `drbw doctor` turns the pair into a diagnosis.
//
// Exit codes: 0 success, 1 runtime error, 2 analyze found contention,
// 3 perf diff found a regression, 64 malformed arguments, 65 unknown
// subcommand, 66 missing input file, 67 parse error, 68 corrupt artifact,
// 69 artifact version skew, 70 injected fault, 74 I/O error.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>

#include "drbw/drbw.hpp"
#include "drbw/fault/injector.hpp"
#include "drbw/features/selected.hpp"
#include "drbw/obs/flight_recorder.hpp"
#include "drbw/obs/manifest.hpp"
#include "drbw/obs/trace.hpp"
#include "drbw/pebs/trace_io.hpp"
#include "drbw/obs/flame.hpp"
#include "drbw/report/fleet.hpp"
#include "drbw/report/markdown.hpp"
#include "drbw/report/postmortem.hpp"
#include "drbw/serve/server.hpp"
#include "drbw/util/artifact.hpp"
#include "drbw/util/ascii_chart.hpp"
#include "drbw/util/cli.hpp"
#include "drbw/util/json.hpp"
#include "drbw/util/strings.hpp"
#include "drbw/util/task_pool.hpp"
#include "drbw/util/table.hpp"
#include "drbw/workloads/evaluation.hpp"
#include "drbw/workloads/suite.hpp"
#include "drbw/workloads/training.hpp"

using namespace drbw;

namespace {

constexpr int kExitUsage = 64;           // malformed arguments (EX_USAGE)
constexpr int kExitUnknownCommand = 65;  // unrecognized subcommand
constexpr int kExitPerfRegression = 3;   // perf diff crossed the threshold

/// Flight-ring capacity for CLI runs.  Deliberately far above what any
/// pipeline run emits, so the ring never wraps: a wrapped ring keeps the
/// last N events by *arrival* order, which is scheduling-dependent, and the
/// manifest's flight_dropped counter (asserted 0 in the determinism tests)
/// would flag it.
constexpr std::size_t kFlightCapacity = 65536;

/// Provenance plumbing shared by the pipeline subcommands (train / record /
/// analyze).  Owns what ObsSinks + FaultOptions used to: the
/// --trace-out/--metrics-out/--timing sinks and the --inject-faults arming —
/// plus the run manifest and flight recorder lifecycle:
///
///   begin()    arms trace/flight/fault sinks before any pipeline work
///   stage(s)   leaves a "stage" breadcrumb in the flight ring
///   finish(c)  writes sinks, then flight.log, then run.json *last* — a
///              manifest on disk always describes a finished run
///   fail(e)    records the outcome, disarms the injector (so the post-
///              mortem writes cannot themselves be faulted), and best-effort
///              dumps flight.log + run.json before returning the exit code
struct RunSession {
  static void add_options(ArgParser& parser) {
    parser.add_option("trace-out",
                      "write a Chrome trace_event JSON trace here", "");
    parser.add_option("metrics-out",
                      "write the metrics registry here (.json => JSON, "
                      "otherwise Prometheus text format)",
                      "");
    parser.add_option("timing",
                      "sim | wall: span-duration clock for --trace-out "
                      "(wall marks the trace non-golden)",
                      "sim");
    parser.add_option(
        "inject-faults",
        "deterministic fault spec: seed=N,site:kind:rate,... (sites: "
        "pebs.sample, engine.epoch, trace.read, trace.write, "
        "trace.shard.read, trace.shard.write, model.write, model.drift, "
        "artifact.write, diagnose.cf, report.render, serve.ingest, "
        "serve.session, serve.window, serve.classify; kinds: drop, corrupt, "
        "truncate, malform, short-write, fail)",
        "");
    parser.add_option("run-dir",
                      "directory for the run manifest (run.json) and flight "
                      "dump (flight.log)",
                      ".");
  }

  RunSession(std::string subcommand, const ArgParser& parser)
      : parser_(parser) {
    manifest_.subcommand = std::move(subcommand);
  }

  /// Arms all sinks.  Must run after parse() and before any pipeline work;
  /// malformed --timing/--inject-faults surface as usage errors (exit 64)
  /// before anything is armed.
  void begin() {
    const std::string& timing = parser_.option("timing");
    obs::TimingMode mode;
    if (timing == "sim") {
      mode = obs::TimingMode::kSim;
    } else if (timing == "wall") {
      mode = obs::TimingMode::kWall;
    } else {
      throw UsageError("--timing expects sim or wall, got '" + timing + "'");
    }
    const std::string& spec = parser_.option("inject-faults");
    if (!spec.empty()) {
      try {
        fault::Plan plan = fault::Plan::parse(spec);
        manifest_.fault_spec = plan.to_string();
        fault::Injector::global().arm(std::move(plan));
      } catch (const Error& e) {
        throw UsageError(std::string("--inject-faults: ") + e.what());
      }
      if (!fault::kEnabled) {
        std::cerr << "drbw: warning: built with -DDRBW_FAULT=OFF; "
                     "--inject-faults is accepted but no fault can fire\n";
      }
    }
    run_dir_ = parser_.option("run-dir");
    if (run_dir_.empty()) run_dir_ = ".";
    std::error_code ec;
    std::filesystem::create_directories(run_dir_, ec);  // best-effort

    const bool tracing = !parser_.option("trace-out").empty();
    if (tracing) obs::Trace::instance().enable(mode);
    obs::FlightRecorder::instance().enable(kFlightCapacity);

    manifest_.timing = timing;
    // Span durations are golden (sim-cycle / seq based) unless the trace
    // sink is in wall mode — then Span reports wall micros (see obs::Span).
    manifest_.spans_golden = !(tracing && mode == obs::TimingMode::kWall);
    manifest_.jobs = 1;
    for (const auto& [name, value] : parser_.resolved_options()) {
      if (name == "jobs") {
        manifest_.jobs = static_cast<int>(parser_.option_int("jobs"));
        continue;  // context, not golden — see obs/manifest.hpp
      }
      if (name == "run-dir") continue;  // the manifest's own location
      manifest_.config.emplace_back(name, value);
    }
    begun_ = true;
  }

  /// Stage-transition breadcrumb; `drbw doctor` reports the last one as the
  /// failing stage.
  void stage(const char* name) { obs::flight().note("stage", name); }

  void note_input(const std::string& role, const std::string& path) {
    manifest_.inputs.push_back(make_ref(role, path));
  }
  void note_output(const std::string& role, const std::string& path) {
    manifest_.outputs.push_back(make_ref(role, path));
  }

  /// Marks the run as degraded (completed in a reduced mode, e.g. serve
  /// without a usable model); recorded in the manifest's golden block.
  void set_degraded(bool degraded) { manifest_.degraded = degraded; }

  /// Records serve's drift verdict ("ok" | "suspected" | "unavailable") in
  /// the manifest's golden block — what `drbw doctor` and fleet read.
  void set_drift(std::string verdict) { manifest_.drift = std::move(verdict); }

  /// Records `drbw train`'s tree-shape provenance (node/leaf counts, depth,
  /// per-feature split counts) in the manifest's golden block.
  void set_model_shape(
      std::size_t nodes, std::size_t leaves, int depth,
      std::vector<std::pair<std::string, std::uint64_t>> splits) {
    manifest_.has_model_shape = true;
    manifest_.model_nodes = nodes;
    manifest_.model_leaves = leaves;
    manifest_.model_depth = static_cast<std::uint64_t>(depth);
    manifest_.model_splits = std::move(splits);
  }

  void set_load_stats(const util::LoadStats& stats) {
    manifest_.has_load_stats = true;
    manifest_.records_seen = stats.records_seen;
    manifest_.records_ok = stats.records_ok;
    manifest_.records_quarantined = stats.records_quarantined;
    manifest_.checksum_ok = stats.checksum_ok;
  }

  /// Success path: trace/metrics sinks, then flight.log, then run.json.
  int finish(int exit_code) {
    const std::string& trace_out = parser_.option("trace-out");
    if (!trace_out.empty()) {
      obs::Trace::instance().write_json(trace_out);
      std::cout << "trace (" << obs::Trace::instance().event_count()
                << " events) written to " << trace_out << '\n';
      note_output("obs-trace-out", trace_out);
    }
    const std::string& metrics_out = parser_.option("metrics-out");
    if (!metrics_out.empty()) {
      util::atomic_write_file(metrics_out,
                              metrics_out.ends_with(".json")
                                  ? obs::Registry::global().json_text()
                                  : obs::Registry::global().prometheus_text());
      std::cout << "metrics written to " << metrics_out << '\n';
      note_output("metrics-out", metrics_out);
    }
    manifest_.status = "ok";
    manifest_.exit_code = exit_code;
    write_postmortem(/*best_effort=*/false);
    std::cout << "run manifest written to " << manifest_path() << '\n';
    return exit_code;
  }

  /// Failure path: record the outcome, disarm the injector, dump what we
  /// can.  The exit code is exactly what the error would have produced had
  /// it reached main()'s catch block.
  int fail(const Error& e) {
    std::cerr << "drbw: " << e.what() << '\n';
    manifest_.status = "error";
    manifest_.error_code = error_code_name(e.code());
    manifest_.exit_code = exit_code_for(e.code());
    manifest_.message = e.what();
    write_postmortem(/*best_effort=*/true);
    return manifest_.exit_code;
  }

 private:
  std::string manifest_path() const {
    return run_dir_ + "/" + obs::kManifestFileName;
  }

  /// Content-identifies an artifact: its own `#drbw-*` header when it has a
  /// checksummed one, a whole-file crc otherwise.  Never throws — an
  /// unreadable path is itself provenance worth recording.
  static obs::ArtifactRef make_ref(const std::string& role,
                                   const std::string& path) {
    obs::ArtifactRef ref;
    ref.role = role;
    ref.path = path;
    try {
      const std::string content = util::read_file_or_throw(path, role);
      const auto header =
          util::parse_artifact_header(content.substr(0, content.find('\n')));
      if (header.has_value() && header->has_checksum) {
        ref.kind = header->kind;
        ref.version = header->version;
        ref.crc = header->crc;
        ref.bytes = header->bytes;
      } else {
        ref.kind = "raw";
        ref.crc = util::crc32(content);
        ref.bytes = content.size();
      }
    } catch (const Error&) {
      ref.kind = "unreadable";
    }
    return ref;
  }

  void write_postmortem(bool best_effort) {
    if (!begun_) return;
    // Tally fires *before* disarming; disarm so the post-mortem writes
    // below cannot be faulted into recursion (artifact.write is a site).
    manifest_.fault_fires = fault::Injector::global().fire_counts();
    fault::Injector::global().disarm();
    auto& flight = obs::FlightRecorder::instance();
    manifest_.spans = flight.span_stats();
    manifest_.flight_events = flight.event_count();
    manifest_.flight_dropped = flight.dropped();
    manifest_.metrics_json = obs::Registry::global().json_text();
    const auto write_one = [&](const char* what, const auto& fn) {
      try {
        fn();
      } catch (const std::exception& e) {
        if (!best_effort) throw;
        std::cerr << "drbw: warning: could not write " << what << ": "
                  << e.what() << '\n';
      }
    };
    if (flight.enabled()) {
      write_one("flight dump", [&] {
        flight.write(run_dir_ + "/" + obs::kFlightFileName);
      });
    }
    write_one("run manifest", [&] { manifest_.write(manifest_path()); });
  }

  const ArgParser& parser_;
  obs::RunManifest manifest_;
  std::string run_dir_ = ".";
  bool begun_ = false;
};

topology::Machine machine_by_name(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "xeon") return topology::Machine::xeon_e5_4650();
  if (lower == "opteron") return topology::Machine::opteron_6174();
  throw Error("unknown machine '" + name + "' (use xeon or opteron)");
}

workloads::RunConfig parse_config(const std::string& name) {
  const auto parts = split(name, '-');
  DRBW_CHECK_MSG(parts.size() == 2 && parts[0].size() > 1 && parts[1].size() > 1,
                 "config must look like T32-N4, got '" << name << "'");
  return workloads::RunConfig{std::stoi(parts[0].substr(1)),
                              std::stoi(parts[1].substr(1))};
}

workloads::PlacementMode parse_placement(const std::string& name) {
  for (const auto mode :
       {workloads::PlacementMode::kOriginal, workloads::PlacementMode::kInterleave,
        workloads::PlacementMode::kColocate, workloads::PlacementMode::kReplicate}) {
    if (name == workloads::placement_mode_name(mode)) return mode;
  }
  throw Error("unknown placement '" + name + "'");
}

int cmd_train(int argc, char** argv) {
  ArgParser parser("drbw train", "Train the bandwidth-contention classifier");
  parser.add_option("seed", "training seed", "2017");
  parser.add_option("out", "model output path", "drbw_model.json");
  parser.add_option("machine", "xeon | opteron", "xeon");
  parser.add_option("jobs",
                    "parallel mini-program runs (0 = one per hardware "
                    "thread); the trained model is identical at any value",
                    "0");
  RunSession::add_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  RunSession session("train", parser);
  session.begin();
  try {
    session.stage("train");
    const auto machine = machine_by_name(parser.option("machine"));
    DRBW_CHECK_MSG(parser.option("machine") == "xeon",
                   "the Table II generator targets the Xeon's Tt-Nn grid");
    const auto model = workloads::train_default_classifier(
        machine, static_cast<std::uint64_t>(parser.option_int("seed")),
        static_cast<int>(parser.option_int("jobs")));
    session.stage("persist");
    model.save(parser.option("out"));
    session.note_output("model-out", parser.option("out"));
    // Tree-shape provenance: printed, and recorded in the run manifest so a
    // later `drbw doctor`/fleet pass can spot a degenerate train.
    const ml::DecisionTree& tree = model.tree();
    std::vector<std::pair<std::string, std::uint64_t>> splits;
    std::ostringstream shape;
    shape << "tree shape: " << tree.nodes().size() << " nodes, "
          << tree.leaf_count() << " leaves, depth " << tree.depth()
          << "; splits:";
    for (const auto& [feature, count] : tree.split_counts()) {
      // Short machine-readable keys ("remote_dram_count"), not the prose
      // Table I names — these land in the manifest as JSON keys.
      const std::string& name =
          features::selected_feature_keys()[static_cast<std::size_t>(feature)];
      splits.emplace_back(name, static_cast<std::uint64_t>(count));
      shape << ' ' << name << " x" << count;
    }
    session.set_model_shape(tree.nodes().size(), tree.leaf_count(),
                            tree.depth(), std::move(splits));
    std::cout << "trained on 192 mini-program runs; model written to "
              << parser.option("out") << '\n'
              << shape.str() << "\n\n"
              << model.describe();
    return session.finish(0);
  } catch (const Error& e) {
    return session.fail(e);
  } catch (const std::exception& e) {
    return session.fail(Error(e.what()));
  }
}

int cmd_record(int argc, char** argv) {
  ArgParser parser("drbw record", "Profile a proxy benchmark into a trace");
  parser.add_option("benchmark", "suite benchmark name", "streamcluster");
  parser.add_option("input", "input index", "1");
  parser.add_option("config", "Tt-Nn configuration", "T32-N4");
  parser.add_option("placement", "placement mode", "original");
  parser.add_option("out", "trace output path", "drbw_trace.csv");
  parser.add_option("seed", "run seed", "7");
  parser.add_option("format",
                    "trace body encoding: csv (v2, greppable) | binary "
                    "(v3, 10-100x faster to load)",
                    "csv");
  parser.add_option("shards",
                    "split the trace into N artifacts behind a shard-set "
                    "index at --out (1 = single file)",
                    "1");
  parser.add_option("jobs",
                    "parallel shard writers (0 = one per hardware thread); "
                    "the written set is identical at any value",
                    "1");
  RunSession::add_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  RunSession session("record", parser);
  session.begin();
  try {
    session.stage("build");
    const auto machine = topology::Machine::xeon_e5_4650();
    const auto bench =
        workloads::make_suite_benchmark(parser.option("benchmark"));
    mem::AddressSpace space(machine);
    sim::EngineConfig engine;
    engine.seed = static_cast<std::uint64_t>(parser.option_int("seed"));
    const auto built = bench->build(
        space, machine, parse_config(parser.option("config")),
        parse_placement(parser.option("placement")),
        static_cast<std::size_t>(parser.option_int("input")));
    session.stage("execute");
    const auto run = workloads::execute(machine, space, built, engine);

    session.stage("persist");
    pebs::SaveOptions save;
    save.format = pebs::trace_format_from_name(parser.option("format"));
    const long long shards = parser.option_int("shards");
    if (shards < 1 ||
        shards > static_cast<long long>(pebs::kMaxTraceShards)) {
      throw UsageError("--shards must be between 1 and " +
                       std::to_string(pebs::kMaxTraceShards) + ", got '" +
                       parser.option("shards") + "'");
    }
    save.shards = static_cast<std::size_t>(shards);
    save.jobs = static_cast<int>(parser.option_int("jobs"));
    const std::vector<std::string> written = pebs::save_trace(
        parser.option("out"), {run.alloc_events, run.samples}, save);
    session.note_output("trace-out", written.front());
    for (std::size_t i = 1; i < written.size(); ++i) {
      session.note_output("trace-shard-out", written[i]);
    }
    std::cout << "recorded " << run.samples.size() << " samples over "
              << format_count(run.total_accesses) << " accesses ("
              << format_fixed(run.seconds(machine) * 1e3, 2)
              << " ms simulated) -> " << parser.option("out") << " ("
              << parser.option("format");
    if (written.size() > 1) {
      std::cout << ", " << written.size() - 1 << " shards";
    }
    std::cout << ")\n";
    return session.finish(0);
  } catch (const Error& e) {
    return session.fail(e);
  } catch (const std::exception& e) {
    return session.fail(Error(e.what()));
  }
}

/// Page locator for offline analysis: reconstructs a plausible layout from
/// the trace's allocation events (every recorded range homed on node 0,
/// the master-allocation default the tool targets).  Sound for verdicts:
/// remote/local classification of each SAMPLE comes from its recorded
/// level; only the home-node attribution of the channel needs this map.
class TraceLocator final : public core::PageLocator {
 public:
  explicit TraceLocator(const std::vector<mem::AllocationEvent>& events) {
    for (const auto& e : events) {
      if (e.kind == mem::AllocationEvent::Kind::kAlloc) {
        ranges_[e.base] = e.base + e.size_bytes;
      }
    }
  }
  topology::NodeId locate(mem::Addr addr, topology::NodeId) override {
    auto it = ranges_.upper_bound(addr);
    if (it != ranges_.begin()) {
      --it;
      if (addr < it->second) return 0;  // recorded heap: master-allocated
    }
    return 0;  // unknown (static) ranges: program image on node 0
  }

 private:
  std::map<mem::Addr, mem::Addr> ranges_;
};

int cmd_analyze(int argc, char** argv) {
  ArgParser parser("drbw analyze", "Analyze a recorded trace offline");
  parser.add_option("trace", "trace file from `drbw record`", "drbw_trace.csv");
  parser.add_option("model", "trained model (empty = train now)", "");
  parser.add_option("windows", "split the run into N time windows", "1");
  parser.add_option("report", "also write a Markdown report here", "");
  parser.add_option("load-mode",
                    "strict (reject the first malformed record) | lenient "
                    "(quarantine malformed records, escalate past "
                    "--max-bad-fraction)",
                    "strict");
  parser.add_option("max-bad-fraction",
                    "lenient only: tolerated quarantined/seen record "
                    "fraction before the load fails as corrupt",
                    "0.25");
  parser.add_option("jobs",
                    "parallel shard readers for sharded traces (0 = one per "
                    "hardware thread); the merged trace is identical at any "
                    "value",
                    "1");
  parser.add_option("expect-trace-version",
                    "reject trace artifacts newer than vN with the "
                    "version-skew exit code (0 = newest supported)",
                    "0");
  RunSession::add_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  RunSession session("analyze", parser);
  session.begin();
  try {
    session.stage("load");
    util::LoadPolicy policy;
    try {
      policy = util::load_policy_from_name(
          parser.option("load-mode"), parser.option_double("max-bad-fraction"));
    } catch (const Error& e) {
      throw UsageError(std::string("--load-mode: ") + e.what());
    }
    pebs::LoadOptions load;
    load.policy = policy;
    load.jobs = static_cast<int>(parser.option_int("jobs"));
    const long long expect = parser.option_int("expect-trace-version");
    if (expect < 0 || expect > pebs::kTraceVersion) {
      throw UsageError("--expect-trace-version must be between 0 and " +
                       std::to_string(pebs::kTraceVersion) + ", got '" +
                       parser.option("expect-trace-version") + "'");
    }
    if (expect > 0) load.max_version = static_cast<int>(expect);
    // Fail fast on missing inputs (exit 66 with a sibling hint) before any
    // model training or trace parsing happens.
    util::require_input_file(parser.option("trace"), "trace file");
    if (!parser.option("model").empty()) {
      util::require_input_file(parser.option("model"), "model file");
    }
    // A sharded trace is many artifacts; the manifest lists the index first
    // and then every shard, each content-identified, so provenance covers
    // the whole set (and the listing is index-ordered, hence golden).
    const std::vector<std::string> trace_files =
        pebs::trace_artifact_paths(parser.option("trace"));
    session.note_input("trace-in", trace_files.front());
    for (std::size_t i = 1; i < trace_files.size(); ++i) {
      session.note_input("trace-shard-in", trace_files[i]);
    }

    const auto machine = topology::Machine::xeon_e5_4650();
    // load_trace fills the stats incrementally, so record them in the
    // manifest even when the load escalates — the quarantine tally at the
    // moment of failure is exactly what `drbw doctor` needs.
    util::LoadStats load_stats;
    pebs::Trace trace;
    try {
      trace = pebs::load_trace(parser.option("trace"), load, &load_stats);
    } catch (...) {
      session.set_load_stats(load_stats);
      throw;
    }
    session.set_load_stats(load_stats);
    std::cout << "loaded " << trace.samples.size() << " samples, "
              << trace.events.size() << " allocation events";
    if (load_stats.records_quarantined > 0 || !load_stats.checksum_ok) {
      std::cout << " (" << load_stats.records_quarantined << " of "
                << load_stats.records_seen << " records quarantined"
                << (load_stats.checksum_ok ? "" : ", checksum FAILED") << ")";
    }
    std::cout << '\n';

    session.stage("classify");
    const ml::Classifier model =
        parser.option("model").empty()
            ? workloads::train_default_classifier(machine)
            : ml::Classifier::load(parser.option("model"), policy);
    if (!parser.option("model").empty()) {
      session.note_input("model-in", parser.option("model"));
    }
    const DrBw tool(machine, model);

    TraceLocator locator(trace.events);
    core::Profiler profiler(machine, locator);

    const auto windows = parser.option_int("windows");
    if (windows <= 1) {
      const Report report =
          tool.analyze_profile(profiler.profile(trace.events, trace.samples));
      std::cout << report.to_string(machine);
      if (!parser.option("report").empty()) {
        session.stage("report");
        report::ReportMeta meta;
        meta.workload = parser.option("trace");
        report::write_file(
            parser.option("report"),
            report::to_markdown(report, machine, meta) +
                report::robustness_markdown(load_stats, parser.option("trace"),
                                            parser.option("load-mode")) +
                report::telemetry_markdown(obs::Registry::global()));
        session.note_output("report-out", parser.option("report"));
        std::cout << "report written to " << parser.option("report") << '\n';
      }
      return session.finish(report.rmc ? 2 : 0);  // exit signals the verdict
    }

    // Windowed: derive the span from the sample timestamps.
    session.stage("windows");
    std::uint64_t last_cycle = 0;
    for (const auto& s : trace.samples) last_cycle = std::max(last_cycle, s.cycle);
    const std::uint64_t window =
        std::max<std::uint64_t>(1, last_cycle / static_cast<std::uint64_t>(windows) + 1);
    sim::RunResult pseudo;
    pseudo.total_cycles = last_cycle + 1;
    pseudo.samples = trace.samples;
    pseudo.alloc_events = trace.events;
    bool any = false;
    for (const auto& v : tool.analyze_windows(pseudo, locator, window)) {
      std::cout << "[" << v.start_cycle << ", " << v.end_cycle << ") "
                << v.samples << " samples: "
                << (v.rmc ? "RMC" : "good");
      for (const auto& ch : v.contended) std::cout << ' ' << machine.channel_name(ch);
      std::cout << '\n';
      any |= v.rmc;
    }
    return session.finish(any ? 2 : 0);
  } catch (const Error& e) {
    return session.fail(e);
  } catch (const std::exception& e) {
    return session.fail(Error(e.what()));
  }
}

/// Version of the `#drbw-explain` JSON artifact.
constexpr int kExplainVersion = 1;

/// Lower-median (nearest-rank) over an unsorted copy.
double lower_median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[(values.size() - 1) / 2];
}

int cmd_explain(int argc, char** argv) {
  ArgParser parser("drbw explain",
                   "Explain per-window verdicts: decision paths, confidence, "
                   "feature attribution");
  parser.add_option("trace", "trace file from `drbw record`", "drbw_trace.csv");
  parser.add_option("model", "trained model (empty = train now)", "");
  parser.add_option("windows", "split the trace into N time windows", "8");
  parser.add_option("out", "checksummed #drbw-explain JSON artifact path",
                    "explain.json");
  parser.add_option("report", "also write a per-window Markdown report here",
                    "");
  parser.add_option("load-mode",
                    "strict (reject the first malformed record) | lenient "
                    "(quarantine malformed records, escalate past "
                    "--max-bad-fraction)",
                    "strict");
  parser.add_option("max-bad-fraction",
                    "lenient only: tolerated quarantined/seen record "
                    "fraction before the load fails as corrupt",
                    "0.25");
  parser.add_option("jobs",
                    "parallel window explainers (0 = one per hardware "
                    "thread); every artifact is byte-identical at any value",
                    "1");
  RunSession::add_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  RunSession session("explain", parser);
  session.begin();
  try {
    session.stage("load");
    util::LoadPolicy policy;
    try {
      policy = util::load_policy_from_name(
          parser.option("load-mode"), parser.option_double("max-bad-fraction"));
    } catch (const Error& e) {
      throw UsageError(std::string("--load-mode: ") + e.what());
    }
    const long long windows_opt = parser.option_int("windows");
    if (windows_opt < 1) {
      throw UsageError("--windows must be >= 1, got '" +
                       parser.option("windows") + "'");
    }
    const std::size_t windows = static_cast<std::size_t>(windows_opt);
    pebs::LoadOptions load;
    load.policy = policy;
    load.jobs = static_cast<int>(parser.option_int("jobs"));
    util::require_input_file(parser.option("trace"), "trace file");
    if (!parser.option("model").empty()) {
      util::require_input_file(parser.option("model"), "model file");
    }
    const std::vector<std::string> trace_files =
        pebs::trace_artifact_paths(parser.option("trace"));
    session.note_input("trace-in", trace_files.front());
    for (std::size_t i = 1; i < trace_files.size(); ++i) {
      session.note_input("trace-shard-in", trace_files[i]);
    }
    util::LoadStats load_stats;
    pebs::Trace trace;
    try {
      trace = pebs::load_trace(parser.option("trace"), load, &load_stats);
    } catch (...) {
      session.set_load_stats(load_stats);
      throw;
    }
    session.set_load_stats(load_stats);

    const auto machine = topology::Machine::xeon_e5_4650();
    const ml::Classifier model =
        parser.option("model").empty()
            ? workloads::train_default_classifier(machine)
            : ml::Classifier::load(parser.option("model"), policy);
    if (!parser.option("model").empty()) {
      session.note_input("model-in", parser.option("model"));
    }

    session.stage("explain");
    // Bucket the samples into cycle windows (analyze's windowing), then
    // explain each window's channels in an indexed fan-out; everything below
    // aggregates in window order, so every artifact is golden at any --jobs.
    std::uint64_t last_cycle = 0;
    for (const auto& s : trace.samples) {
      last_cycle = std::max(last_cycle, s.cycle);
    }
    const std::uint64_t window_cycles = std::max<std::uint64_t>(
        1, last_cycle / static_cast<std::uint64_t>(windows) + 1);
    std::vector<std::vector<pebs::MemorySample>> buckets(windows);
    for (const auto& s : trace.samples) {
      buckets[std::min<std::size_t>(windows - 1, s.cycle / window_cycles)]
          .push_back(s);
    }
    TraceLocator locator(trace.events);
    struct Verdict {
      std::string channel;
      ml::Explanation exp;
    };
    struct WindowSlot {
      std::vector<Verdict> verdicts;
    };
    std::vector<WindowSlot> slots(windows);
    {
      obs::Span explain_span("explain");
      util::TaskPool pool(static_cast<int>(parser.option_int("jobs")));
      pool.parallel_for(windows, [&](std::size_t w) {
        if (buckets[w].empty()) return;
        core::Profiler profiler(machine, locator);
        const core::ProfileResult profile =
            profiler.profile(trace.events, buckets[w]);
        for (const features::ChannelFeatures& ch :
             features::extract_channels(profile, machine)) {
          // The serve loop's sparse-window guards: a nearly-empty channel
          // scope yields all-zero features whose "verdict" explains nothing.
          if (ch.features.scope_samples < 8) continue;
          if (ch.features.values[5] < 2.0) continue;
          slots[w].verdicts.push_back(Verdict{
              machine.channel_name(ch.channel),
              model.predict_explained(ch.features.as_row())});
        }
      });
    }

    // Serial aggregation: per-window verdict rows, decision-path frequency,
    // and per-feature attribution sums.
    const std::array<std::string, features::kNumSelected>& keys =
        features::selected_feature_keys();
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> paths;
    std::vector<double> attr_sum(model.feature_names().size(), 0.0);
    std::vector<double> attr_abs(model.feature_names().size(), 0.0);
    std::vector<double> confidences;
    std::uint64_t rows = 0, rmc_rows = 0;
    std::uint64_t windows_explained = 0, windows_rmc = 0;
    auto& conf_hist = obs::Registry::global().histogram(
        "drbw_model_confidence_bucket",
        "Per-window classification confidence (leaf purity, percent)",
        {50, 60, 70, 80, 90, 95, 100});
    for (const WindowSlot& slot : slots) {
      if (slot.verdicts.empty()) continue;
      ++windows_explained;
      bool window_rmc = false;
      for (const Verdict& v : slot.verdicts) {
        ++rows;
        const bool is_rmc = v.exp.label == ml::Label::kRmc;
        if (is_rmc) {
          ++rmc_rows;
          window_rmc = true;
        }
        confidences.push_back(v.exp.confidence);
        conf_hist.observe(
            static_cast<std::uint64_t>(v.exp.confidence * 100.0 + 0.5));
        auto& tally = paths[v.exp.path_signature()];
        ++tally.first;
        if (is_rmc) ++tally.second;
        for (std::size_t f = 0; f < v.exp.attributions.size(); ++f) {
          attr_sum[f] += v.exp.attributions[f];
          attr_abs[f] += std::abs(v.exp.attributions[f]);
        }
      }
      if (window_rmc) ++windows_rmc;
    }
    const double confidence_p50 = lower_median(confidences);
    const double confidence_min =
        confidences.empty()
            ? 0.0
            : *std::min_element(confidences.begin(), confidences.end());

    // The `#drbw-explain v1` artifact: golden-vs-context split like the
    // manifest, but nothing here depends on --jobs, so the whole document
    // (and its header checksum) is byte-identical at any value.
    Json golden = JsonObject{};
    Json summary = JsonObject{};
    summary.set("windows", windows);
    summary.set("windows_explained", windows_explained);
    summary.set("windows_rmc", windows_rmc);
    summary.set("rows", rows);
    summary.set("rmc_rows", rmc_rows);
    summary.set("confidence_p50", confidence_p50);
    summary.set("confidence_min", confidence_min);
    golden.set("summary", std::move(summary));
    Json window_list = JsonArray{};
    for (std::size_t w = 0; w < windows; ++w) {
      Json entry = JsonObject{};
      entry.set("window", w);
      entry.set("start", w * window_cycles);
      entry.set("end", std::min<std::uint64_t>(last_cycle + 1,
                                               (w + 1) * window_cycles));
      entry.set("samples", buckets[w].size());
      Json verdicts = JsonArray{};
      for (const Verdict& v : slots[w].verdicts) {
        Json row = JsonObject{};
        row.set("channel", v.channel);
        row.set("label", v.exp.label == ml::Label::kRmc ? "rmc" : "good");
        row.set("confidence", v.exp.confidence);
        row.set("path", v.exp.path_signature());
        row.set("leaf", v.exp.leaf);
        verdicts.push_back(std::move(row));
      }
      entry.set("verdicts", std::move(verdicts));
      window_list.push_back(std::move(entry));
    }
    golden.set("windows", std::move(window_list));
    // Path frequency: most common first, signature as the tie-break.
    std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>>
        ranked(paths.begin(), paths.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       if (a.second.first != b.second.first) {
                         return a.second.first > b.second.first;
                       }
                       return a.first < b.first;
                     });
    Json path_list = JsonArray{};
    for (const auto& [signature, tally] : ranked) {
      Json entry = JsonObject{};
      entry.set("signature", signature);
      entry.set("count", tally.first);
      entry.set("rmc", tally.second);
      path_list.push_back(std::move(entry));
    }
    golden.set("paths", std::move(path_list));
    Json attribution_list = JsonArray{};
    for (std::size_t f = 0; f < attr_sum.size(); ++f) {
      Json entry = JsonObject{};
      entry.set("feature", f < keys.size() ? keys[f]
                                           : model.feature_names()[f]);
      entry.set("mean", rows > 0 ? attr_sum[f] / static_cast<double>(rows)
                                 : 0.0);
      entry.set("mean_abs",
                rows > 0 ? attr_abs[f] / static_cast<double>(rows) : 0.0);
      attribution_list.push_back(std::move(entry));
    }
    golden.set("attributions", std::move(attribution_list));
    Json context = JsonObject{};
    context.set("trace", parser.option("trace"));
    context.set("model", parser.option("model").empty()
                             ? "(trained in-process)"
                             : parser.option("model"));
    Json doc = JsonObject{};
    doc.set("drbw_explain", kExplainVersion);
    doc.set("golden", std::move(golden));
    doc.set("context", std::move(context));

    session.stage("persist");
    util::write_versioned_artifact(parser.option("out"), "explain",
                                   kExplainVersion, doc.dump(2) + "\n");
    session.note_output("explain-out", parser.option("out"));

    if (!parser.option("report").empty()) {
      std::ostringstream md;
      md << "# DR-BW explain report\n\n`" << parser.option("trace") << "` vs "
         << (parser.option("model").empty()
                 ? std::string("an in-process model")
                 : "`" + parser.option("model") + "`")
         << ": " << windows_explained << " of " << windows
         << " window(s) explained, " << rows << " channel verdict(s) ("
         << rmc_rows << " rmc), confidence p50 "
         << format_fixed(confidence_p50, 3) << ", min "
         << format_fixed(confidence_min, 3) << "\n";
      md << "\n## Decision paths\n\n| path | count | rmc |\n|---|---:|---:|\n";
      for (const auto& [signature, tally] : ranked) {
        md << "| `" << signature << "` | " << tally.first << " | "
           << tally.second << " |\n";
      }
      md << "\n## Feature attribution (mean delta-P(rmc) per verdict)\n\n"
            "| feature | mean | mean abs |\n|---|---:|---:|\n";
      for (std::size_t f = 0; f < attr_sum.size(); ++f) {
        const double denom = rows > 0 ? static_cast<double>(rows) : 1.0;
        md << "| " << (f < keys.size() ? keys[f] : model.feature_names()[f])
           << " | " << format_fixed(attr_sum[f] / denom, 4) << " | "
           << format_fixed(attr_abs[f] / denom, 4) << " |\n";
      }
      md << "\n## Windows\n";
      for (std::size_t w = 0; w < windows; ++w) {
        md << "\n### window " << w << " [" << w * window_cycles << ", "
           << std::min<std::uint64_t>(last_cycle + 1, (w + 1) * window_cycles)
           << ") — " << buckets[w].size() << " sample(s)\n\n";
        if (slots[w].verdicts.empty()) {
          md << "no explainable channel (sparse window)\n";
          continue;
        }
        md << "| channel | verdict | confidence | path |\n"
              "|---|---|---:|---|\n";
        for (const Verdict& v : slots[w].verdicts) {
          md << "| " << v.channel << " | "
             << (v.exp.label == ml::Label::kRmc ? "RMC" : "good") << " | "
             << format_fixed(v.exp.confidence, 3) << " | `"
             << v.exp.path_signature() << "` |\n";
        }
      }
      report::write_file(parser.option("report"), md.str());
      session.note_output("report-out", parser.option("report"));
      std::cout << "report written to " << parser.option("report") << '\n';
    }

    std::cout << "explained " << rows << " channel verdict(s) across "
              << windows_explained << " of " << windows << " window(s): "
              << rmc_rows << " rmc, " << paths.size()
              << " distinct decision path(s), confidence p50 "
              << format_fixed(confidence_p50, 3) << '\n';
    std::cout << "explain artifact written to " << parser.option("out")
              << '\n';
    return session.finish(0);
  } catch (const Error& e) {
    return session.fail(e);
  } catch (const std::exception& e) {
    return session.fail(Error(e.what()));
  }
}

int cmd_serve(int argc, char** argv) {
  ArgParser parser("drbw serve",
                   "Replay a recorded trace through the online serving loop");
  parser.add_option("replay", "trace file from `drbw record`",
                    "drbw_trace.csv");
  parser.add_option("model",
                    "trained model (empty = train now; a missing or corrupt "
                    "model degrades the server to pass-through telemetry "
                    "instead of failing)",
                    "");
  parser.add_option("clients", "simulated client streams", "4");
  parser.add_option("queue-depth", "bounded ingest queue depth per client",
                    "64");
  parser.add_option("overload",
                    "block | shed-oldest | reject: what a full queue does "
                    "with the next sample",
                    "block");
  parser.add_option("window-cycles",
                    "replay window width in simulated cycles (0 = derive "
                    "~8 windows from the trace span)",
                    "0");
  parser.add_option("drain-rate",
                    "samples drained per client per tick (0 = queue depth)",
                    "0");
  parser.add_option("window-capacity",
                    "sliding classification window capacity per client",
                    "512");
  parser.add_option("max-cycles",
                    "stop admitting at this simulated cycle (0 = replay all)",
                    "0");
  parser.add_option("max-retries",
                    "retries with deterministic backoff before an operation "
                    "counts as a fault",
                    "2");
  parser.add_option("backoff-cycles",
                    "simulated-cycle penalty of the first retry (doubles per "
                    "attempt)",
                    "100");
  parser.add_option("breaker-threshold",
                    "consecutive faults that quarantine a client", "3");
  parser.add_option("snapshot-out",
                    "checksummed serve snapshot path (empty = "
                    "<run-dir>/serve_snapshot.json)",
                    "");
  parser.add_option("snapshot-every",
                    "rewrite the snapshot every N ticks (0 = final only)",
                    "0");
  parser.add_option("drift-threshold",
                    "mark the run drift-suspected when any client's PSI "
                    "divergence from the model's training baseline reaches "
                    "F (0 = never flag; needs a baseline-carrying v3 model; "
                    "typed, never fatal)",
                    "0");
  parser.add_option("load-mode",
                    "strict (reject the first malformed record) | lenient "
                    "(quarantine malformed records, escalate past "
                    "--max-bad-fraction)",
                    "strict");
  parser.add_option("max-bad-fraction",
                    "lenient only: tolerated quarantined/seen record "
                    "fraction before the load fails as corrupt",
                    "0.25");
  parser.add_option("jobs",
                    "parallel window classifiers (0 = one per hardware "
                    "thread); snapshots, metrics, and the manifest are "
                    "byte-identical at any value",
                    "1");
  RunSession::add_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  RunSession session("serve", parser);
  session.begin();
  try {
    session.stage("load");
    util::LoadPolicy policy;
    try {
      policy = util::load_policy_from_name(
          parser.option("load-mode"), parser.option_double("max-bad-fraction"));
    } catch (const Error& e) {
      throw UsageError(std::string("--load-mode: ") + e.what());
    }
    serve::ServeOptions opts;
    try {
      opts.overload = serve::overload_policy_from_name(parser.option("overload"));
    } catch (const Error& e) {
      throw UsageError(std::string("--overload: ") + e.what());
    }
    const long long clients = parser.option_int("clients");
    if (clients < 1) {
      throw UsageError("--clients must be >= 1, got '" +
                       parser.option("clients") + "'");
    }
    opts.clients = static_cast<std::uint32_t>(clients);
    const long long depth = parser.option_int("queue-depth");
    if (depth < 1) {
      throw UsageError("--queue-depth must be >= 1, got '" +
                       parser.option("queue-depth") + "'");
    }
    opts.queue_depth = static_cast<std::size_t>(depth);
    opts.window_cycles =
        static_cast<std::uint64_t>(parser.option_int("window-cycles"));
    opts.drain_per_tick =
        static_cast<std::size_t>(parser.option_int("drain-rate"));
    opts.window_capacity = static_cast<std::size_t>(
        std::max<long long>(1, parser.option_int("window-capacity")));
    opts.max_cycles =
        static_cast<std::uint64_t>(parser.option_int("max-cycles"));
    opts.max_retries =
        static_cast<int>(std::max<long long>(0, parser.option_int("max-retries")));
    opts.backoff_cycles =
        static_cast<std::uint64_t>(parser.option_int("backoff-cycles"));
    opts.breaker_threshold = static_cast<int>(
        std::max<long long>(1, parser.option_int("breaker-threshold")));
    opts.snapshot_every =
        static_cast<std::uint64_t>(parser.option_int("snapshot-every"));
    opts.drift_threshold = parser.option_double("drift-threshold");
    if (opts.drift_threshold < 0.0) {
      throw UsageError("--drift-threshold must be >= 0, got '" +
                       parser.option("drift-threshold") + "'");
    }
    opts.jobs = static_cast<int>(parser.option_int("jobs"));
    std::string run_dir = parser.option("run-dir");
    if (run_dir.empty()) run_dir = ".";
    opts.snapshot_path = parser.option("snapshot-out").empty()
                             ? run_dir + "/serve_snapshot.json"
                             : parser.option("snapshot-out");

    pebs::LoadOptions load;
    load.policy = policy;
    load.jobs = opts.jobs;
    util::require_input_file(parser.option("replay"), "trace file");
    const std::vector<std::string> trace_files =
        pebs::trace_artifact_paths(parser.option("replay"));
    session.note_input("trace-in", trace_files.front());
    for (std::size_t i = 1; i < trace_files.size(); ++i) {
      session.note_input("trace-shard-in", trace_files[i]);
    }
    util::LoadStats load_stats;
    pebs::Trace trace;
    try {
      trace = pebs::load_trace(parser.option("replay"), load, &load_stats);
    } catch (...) {
      session.set_load_stats(load_stats);
      throw;
    }
    session.set_load_stats(load_stats);
    std::cout << "loaded " << trace.samples.size() << " samples, "
              << trace.events.size() << " allocation events\n";

    // Graceful degradation: a model that cannot be loaded (missing file,
    // unparseable JSON, checksum damage, newer format) must not take the
    // server down — classification is skipped, telemetry still flows.
    const auto machine = topology::Machine::xeon_e5_4650();
    std::optional<ml::Classifier> model;
    if (parser.option("model").empty()) {
      model = workloads::train_default_classifier(machine);
    } else {
      session.note_input("model-in", parser.option("model"));
      try {
        model = ml::Classifier::load(parser.option("model"), policy);
      } catch (const Error& e) {
        std::cerr << "drbw serve: degraded to pass-through telemetry: "
                  << e.what() << '\n';
      }
    }

    session.stage("serve");
    serve::Server server(machine, model.has_value() ? &*model : nullptr, opts);
    const serve::ServeResult result = server.run(trace);
    session.set_degraded(result.degraded);

    std::cout << "served " << result.ticks << " ticks x "
              << result.window_cycles << " cycles across " << result.clients.size()
              << " clients (" << serve::overload_policy_name(opts.overload)
              << "): " << result.samples_admitted << " admitted, "
              << result.samples_shed << " shed, " << result.samples_rejected
              << " rejected, " << result.samples_dropped << " dropped\n";
    std::cout << "classified " << result.windows_classified << " windows ("
              << result.windows_rmc << " contended), " << result.faults
              << " faults, " << result.retries << " retries, "
              << result.quarantined_clients << " clients quarantined\n";
    if (result.degraded) {
      std::cout << "DEGRADED: no usable model; classification skipped\n";
    }
    // Model observability: the drift verdict goes to the manifest's golden
    // block ("ok" | "suspected" | "unavailable") so doctor and fleet can
    // read it without the snapshot.  Suspected drift never changes the exit
    // code — serve is a telemetry loop, the finding is typed, not fatal.
    if (result.drift_available) {
      session.set_drift(result.drift_suspected_clients > 0 ? "suspected"
                                                           : "ok");
      std::cout << "model health: confidence p50 "
                << format_fixed(result.confidence_p50, 3) << ", max drift "
                << format_fixed(result.drift_score, 3);
      if (result.drift_suspected_clients > 0) {
        std::cout << " — DRIFT SUSPECTED (" << result.drift_suspected_clients
                  << " client(s) at or past --drift-threshold "
                  << format_fixed(result.drift_threshold, 3) << ")";
      }
      std::cout << '\n';
    } else {
      session.set_drift("unavailable");
      if (!result.degraded) {
        std::cout << "drift detection unavailable: the model carries no "
                     "training baseline (re-save it with this build's "
                     "`drbw train` to enable)\n";
      }
    }
    if (!result.drained) {
      std::cout << "replay cut short at --max-cycles "
                << opts.max_cycles << "; remaining samples dropped\n";
    }
    std::cout << "serve snapshot (" << result.snapshots_written
              << " writes) at " << opts.snapshot_path << '\n';
    session.note_output("serve-snapshot-out", opts.snapshot_path);

    session.stage("persist");
    // A degraded run still exits 0: serve is a telemetry loop, not a
    // verdict tool, and "kept serving without a model" is the contract.
    return session.finish(0);
  } catch (const Error& e) {
    return session.fail(e);
  } catch (const std::exception& e) {
    return session.fail(Error(e.what()));
  }
}

const Json* find_member(const JsonObject& object, const std::string& key) {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

/// `drbw stats --serve`: render the windowed contention timeline a v2 serve
/// snapshot carries.  Accepts the checksummed artifact (validated) or a raw
/// snapshot body.
int stats_serve(const ArgParser& parser) {
  const std::string path = parser.option("trace");
  util::require_input_file(path, "serve snapshot");
  std::string body = util::read_file_or_throw(path, "serve snapshot");
  if (body.rfind("#drbw-serve-snapshot", 0) == 0) {
    body = util::read_versioned_artifact(path, "serve-snapshot",
                                         serve::kServeSnapshotVersion,
                                         util::LoadPolicy{})
               .body;
  }
  const Json root = Json::parse(body);
  const JsonObject& fields = root.as_object();
  const Json* version = find_member(fields, "drbw_serve_snapshot");
  if (version == nullptr) {
    throw Error(path + ": not a serve snapshot (no drbw_serve_snapshot "
                       "field); `drbw serve` writes one at --snapshot-out",
                ErrorCode::kParse);
  }
  const Json* timeline = find_member(fields, "timeline");
  if (timeline == nullptr || !timeline->is_array() ||
      timeline->as_array().empty()) {
    std::cout << "no contention timeline in " << path << " (v"
              << static_cast<long long>(version->as_number())
              << " snapshot; either it predates v2 or no window was "
                 "classified)\n";
    return 0;
  }
  std::vector<std::pair<double, double>> rmc_series;
  std::vector<std::pair<double, double>> conf_series;
  std::vector<std::pair<double, double>> drift_series;
  std::uint64_t windows = 0, rmc = 0;
  double max_drift = 0.0;
  for (const Json& row : timeline->as_array()) {
    const JsonObject& r = row.as_object();
    const auto num = [&](const char* key) {
      const Json* node = find_member(r, key);
      return node != nullptr ? node->as_number() : 0.0;
    };
    const double tick = num("tick");
    const double row_windows = num("windows");
    const double row_rmc = num("rmc");
    windows += static_cast<std::uint64_t>(row_windows);
    rmc += static_cast<std::uint64_t>(row_rmc);
    rmc_series.emplace_back(tick,
                            row_windows > 0.0 ? row_rmc / row_windows : 0.0);
    conf_series.emplace_back(tick, num("confidence_p50"));
    const double drift = num("drift");
    max_drift = std::max(max_drift, drift);
    // PSI divergence is unbounded; the chart wants [0, 1], so the row is
    // capped for display and the true max printed below.
    drift_series.emplace_back(tick, std::min(1.0, drift));
  }
  TimelineChart chart(static_cast<int>(parser.option_int("width")));
  chart.add_series("rmc fraction", rmc_series);
  chart.add_series("confidence p50", conf_series);
  chart.add_series("drift (cap 1)", drift_series);
  std::cout << "windowed contention timeline ("
            << timeline->as_array().size() << " row(s), " << windows
            << " classified window(s), " << rmc << " contended)\n\n"
            << chart.render();
  if (const Json* drift = find_member(fields, "drift")) {
    const JsonObject& d = drift->as_object();
    const auto num = [&](const char* key) {
      const Json* node = find_member(d, key);
      return node != nullptr ? node->as_number() : 0.0;
    };
    std::cout << "\ndrift: max score " << format_fixed(num("score"), 3)
              << " (threshold " << format_fixed(num("threshold"), 3) << "), "
              << static_cast<std::uint64_t>(num("suspected_clients"))
              << " client(s) suspected, confidence p50 "
              << format_fixed(num("confidence_p50"), 3) << '\n';
  } else {
    std::cout << "\ndrift: unavailable (degraded run, or the model carries "
                 "no training baseline)\n";
  }
  return 0;
}

int cmd_stats(int argc, char** argv) {
  ArgParser parser("drbw stats",
                   "Render the per-epoch channel-utilization timeline from a "
                   "trace file written with --trace-out (or, with --serve, "
                   "the contention timeline of a serve snapshot)");
  parser.add_option("trace",
                    "trace_event JSON from --trace-out (with --serve: a "
                    "serve_snapshot.json)",
                    "obs_trace.json");
  parser.add_option("width", "timeline width in columns", "64");
  parser.add_option("top", "show only the N busiest channels (0 = all)", "0");
  parser.add_flag("serve",
                  "treat --trace as a serve snapshot and render its windowed "
                  "contention timeline");
  if (!parser.parse(argc, argv)) return 0;
  if (parser.flag("serve")) return stats_serve(parser);

  const std::string content =
      util::read_file_or_throw(parser.option("trace"), "trace file");
  if (content.rfind("#drbw-serve-snapshot", 0) == 0) {
    throw UsageError("drbw stats: '" + parser.option("trace") +
                     "' is a serve snapshot, not a trace_event file — did "
                     "you mean `drbw stats --serve --trace " +
                     parser.option("trace") + "`?");
  }
  const Json root = Json::parse(content);

  // Per-channel (epoch-start-cycle, utilization) series from the engine's
  // per-epoch "epoch" counter events.  Any other event kinds are skipped, so
  // stats works on traces from any subcommand.
  std::map<std::string, std::vector<std::pair<double, double>>> series;
  std::size_t epochs = 0;
  const Json* events = find_member(root.as_object(), "traceEvents");
  if (events == nullptr) {
    if (find_member(root.as_object(), "drbw_serve_snapshot") != nullptr) {
      throw UsageError("drbw stats: '" + parser.option("trace") +
                       "' is a serve snapshot, not a trace_event file — did "
                       "you mean `drbw stats --serve --trace " +
                       parser.option("trace") + "`?");
    }
    throw Error("not a trace_event file: no traceEvents");
  }
  for (const Json& event : events->as_array()) {
    const JsonObject& fields = event.as_object();
    const Json* name = find_member(fields, "name");
    const Json* phase = find_member(fields, "ph");
    const Json* args = find_member(fields, "args");
    if (name == nullptr || phase == nullptr || args == nullptr) continue;
    if (name->as_string() != "epoch" || phase->as_string() != "C") continue;
    const double ts = find_member(fields, "ts")->as_number();
    ++epochs;
    for (const auto& [channel, value] : args->as_object()) {
      if (channel == "max_latency_multiplier") continue;
      series[channel].emplace_back(ts, value.as_number());
    }
  }
  if (series.empty()) {
    std::cout << "no per-epoch channel events in " << parser.option("trace")
              << " (record the trace with --trace-out on train/record/"
                 "analyze)\n";
    return 0;
  }

  // Busiest channels first so the interesting rows are at the top.
  std::vector<std::pair<std::string, double>> order;
  for (const auto& [channel, points] : series) {
    double peak = 0.0;
    for (const auto& [ts, value] : points) peak = std::max(peak, value);
    order.emplace_back(channel, peak);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  const auto top = static_cast<std::size_t>(parser.option_int("top"));
  if (top > 0 && order.size() > top) order.resize(top);

  TimelineChart chart(static_cast<int>(parser.option_int("width")));
  for (const auto& [channel, peak] : order) {
    chart.add_series(channel, series.at(channel));
  }
  std::cout << "channel utilization per epoch (" << epochs << " epochs, "
            << order.size() << " of " << series.size() << " channels)";
  if (const Json* other = find_member(root.as_object(), "otherData")) {
    if (const Json* clock = find_member(other->as_object(), "clock")) {
      std::cout << ", clock: " << clock->as_string();
    }
  }
  std::cout << "\n\n" << chart.render();
  return 0;
}

int cmd_convert(int argc, char** argv) {
  ArgParser parser("drbw convert",
                   "Re-encode a trace artifact (csv <-> binary, shard or "
                   "unshard)");
  parser.add_option("in", "trace to convert (any supported version)",
                    "drbw_trace.csv");
  parser.add_option("out", "converted trace output path", "drbw_trace.bin");
  parser.add_option("format", "output body encoding: csv | binary", "binary");
  parser.add_option("shards",
                    "split the output into N artifacts behind a shard-set "
                    "index at --out (1 = single file)",
                    "1");
  parser.add_option("jobs",
                    "parallel shard readers/writers (0 = one per hardware "
                    "thread)",
                    "1");
  parser.add_option("load-mode", "strict | lenient (see drbw analyze)",
                    "strict");
  parser.add_option("max-bad-fraction",
                    "lenient only: tolerated quarantined/seen record "
                    "fraction before the load fails as corrupt",
                    "0.25");
  if (!parser.parse(argc, argv)) return 0;
  pebs::LoadOptions load;
  try {
    load.policy = util::load_policy_from_name(
        parser.option("load-mode"), parser.option_double("max-bad-fraction"));
  } catch (const Error& e) {
    throw UsageError(std::string("--load-mode: ") + e.what());
  }
  load.jobs = static_cast<int>(parser.option_int("jobs"));
  pebs::SaveOptions save;
  save.format = pebs::trace_format_from_name(parser.option("format"));
  const long long shards = parser.option_int("shards");
  if (shards < 1 || shards > static_cast<long long>(pebs::kMaxTraceShards)) {
    throw UsageError("--shards must be between 1 and " +
                     std::to_string(pebs::kMaxTraceShards) + ", got '" +
                     parser.option("shards") + "'");
  }
  save.shards = static_cast<std::size_t>(shards);
  save.jobs = load.jobs;
  util::require_input_file(parser.option("in"), "trace file");
  util::LoadStats stats;
  const pebs::Trace trace =
      pebs::load_trace(parser.option("in"), load, &stats);
  const std::vector<std::string> written =
      pebs::save_trace(parser.option("out"), trace, save);
  std::cout << "converted " << trace.samples.size() << " samples, "
            << trace.events.size() << " allocation events -> "
            << parser.option("out") << " (" << parser.option("format");
  if (written.size() > 1) {
    std::cout << ", " << written.size() - 1 << " shards";
  }
  std::cout << ")";
  if (stats.records_quarantined > 0 || !stats.checksum_ok) {
    std::cout << " [" << stats.records_quarantined << " of "
              << stats.records_seen << " input records quarantined"
              << (stats.checksum_ok ? "" : ", input checksum FAILED") << "]";
  }
  std::cout << '\n';
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  ArgParser parser("drbw inspect", "Pretty-print a trained model");
  parser.add_option("model", "model path", "drbw_model.json");
  if (!parser.parse(argc, argv)) return 0;
  util::require_input_file(parser.option("model"), "model file");
  const auto model = ml::Classifier::load(parser.option("model"));
  std::cout << model.describe() << "\nfeatures used:";
  for (const int f : model.tree().used_features()) {
    std::cout << "\n  #" << (f + 1) << " "
              << model.feature_names()[static_cast<std::size_t>(f)];
  }
  std::cout << '\n';
  return 0;
}

int cmd_topology(int argc, char** argv) {
  ArgParser parser("drbw topology", "Describe a simulated machine");
  parser.add_option("machine", "xeon | opteron", "xeon");
  if (!parser.parse(argc, argv)) return 0;
  const auto machine = machine_by_name(parser.option("machine"));
  const auto& spec = machine.spec();
  std::cout << spec.name << "\n  " << machine.num_nodes() << " nodes x "
            << spec.cores_per_socket << " cores x " << spec.threads_per_core
            << " HT @ " << spec.ghz << " GHz\n  L1 " << spec.l1.size_bytes / 1024
            << " KiB, L2 " << spec.l2.size_bytes / 1024 << " KiB, L3 "
            << (spec.l3.size_bytes >> 20) << " MiB/socket, DRAM "
            << (spec.dram_bytes_per_node >> 30) << " GiB/node\n";
  TablePrinter t({{"channel", Align::kLeft},
                  {"hops", Align::kRight},
                  {"capacity (B/cyc)", Align::kRight},
                  {"idle latency (cyc)", Align::kRight}});
  for (int i = 0; i < machine.num_channels(); ++i) {
    const auto ch = machine.channel_at(i);
    t.add_row({machine.channel_name(ch), std::to_string(machine.hops(ch)),
               format_fixed(machine.channel_capacity(ch), 2),
               format_fixed(machine.idle_dram_latency(ch), 0)});
  }
  print_block(std::cout, t.render());
  return 0;
}

// doctor and perf diff take positional arguments, which ArgParser rejects by
// design; both are small enough to hand-parse.

int cmd_doctor(int argc, char** argv) {
  const char* usage =
      "drbw doctor [run-dir] — diagnose a previous run from its manifest\n"
      "\n"
      "Loads <run-dir>/run.json (and flight.log when present; default\n"
      "run-dir is '.') and prints ranked root-cause findings.  Exits 0 when\n"
      "the diagnosis succeeds — including for runs that themselves failed.\n";
  std::string run_dir = ".";
  bool have_dir = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage;
      return 0;
    }
    if (starts_with(arg, "--")) {
      throw UsageError("drbw doctor: unknown option '" + arg + "'");
    }
    if (have_dir) {
      throw UsageError("drbw doctor expects at most one run directory");
    }
    run_dir = arg;
    have_dir = true;
  }
  std::cout << report::render_doctor(report::doctor(run_dir));
  return 0;
}

int cmd_perf_diff(int argc, char** argv) {
  const char* usage =
      "drbw perf diff <baseline/run.json> <after/run.json>... "
      "[--threshold F]\n"
      "\n"
      "Compares span statistics and metric counters between run manifests:\n"
      "the first is the baseline, and every following manifest is diffed\n"
      "against it.  Exits 3 when any comparison grew past baseline*(1+F)\n"
      "(default F = 0.25); CI uses this as a perf gate.\n";
  std::vector<std::string> manifests;
  double threshold = 0.25;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage;
      return 0;
    }
    if (arg == "--threshold" || starts_with(arg, "--threshold=")) {
      std::string raw;
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        raw = arg.substr(eq + 1);
      } else {
        if (i + 1 >= argc) {
          throw UsageError("drbw perf diff: --threshold expects a value");
        }
        raw = argv[++i];
      }
      char* end = nullptr;
      threshold = std::strtod(raw.c_str(), &end);
      if (end == nullptr || *end != '\0' || raw.empty() || threshold < 0.0) {
        throw UsageError(
            "drbw perf diff: --threshold expects a non-negative number, "
            "got '" + raw + "'");
      }
      continue;
    }
    if (starts_with(arg, "--")) {
      throw UsageError("drbw perf diff: unknown option '" + arg + "'");
    }
    manifests.push_back(arg);
  }
  if (manifests.size() < 2) {
    throw UsageError(
        "drbw perf diff expects a baseline and at least one comparison "
        "manifest");
  }
  const report::ManifestData before = report::load_manifest(manifests[0]);
  bool any_regressed = false;
  for (std::size_t i = 1; i < manifests.size(); ++i) {
    const report::ManifestData after = report::load_manifest(manifests[i]);
    const report::PerfDiff diff = report::perf_diff(before, after, threshold);
    if (manifests.size() > 2) {
      std::cout << "== " << manifests[0] << " vs " << manifests[i] << " ==\n";
    }
    std::cout << report::render_perf_diff(diff);
    any_regressed = any_regressed || diff.regressed;
  }
  return any_regressed ? kExitPerfRegression : 0;
}

/// Hand-parsed "--name value" / "--name=value" helper for the positional
/// subcommands (doctor-style).  Returns true when `arg` matched `name`,
/// leaving the value in `value` (and advancing `i` for the two-token form).
bool take_option(const std::string& cmd, const std::string& arg,
                 const char* name, int argc, char** argv, int& i,
                 std::string& value) {
  const std::string flag = std::string("--") + name;
  if (arg == flag) {
    if (i + 1 >= argc) {
      throw UsageError(cmd + ": " + flag + " expects a value");
    }
    value = argv[++i];
    return true;
  }
  if (starts_with(arg, flag + "=")) {
    value = arg.substr(flag.size() + 1);
    return true;
  }
  return false;
}

long long parse_int_option(const std::string& cmd, const char* name,
                           const std::string& raw, long long min_value) {
  char* end = nullptr;
  const long long value = std::strtoll(raw.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || raw.empty() || value < min_value) {
    throw UsageError(cmd + ": --" + name + " expects an integer >= " +
                     std::to_string(min_value) + ", got '" + raw + "'");
  }
  return value;
}

int cmd_fleet(int argc, char** argv) {
  const char* usage =
      "drbw fleet <root-dir> [options] — aggregate a tree of run dirs\n"
      "\n"
      "Recursively discovers every directory under root-dir holding a\n"
      "run.json, validates each manifest's checksum (corrupt manifests are\n"
      "quarantined into the report, never fatal), and aggregates outcomes,\n"
      "span-time distributions, fault fires, and quarantine tallies.\n"
      "\n"
      "  --baseline run.json   perf-diff every passing run against this\n"
      "                        manifest; exit 3 when any run regresses\n"
      "  --threshold F         regression threshold (default 0.25 = +25%)\n"
      "  --filter status=S     aggregate only ok or failed runs\n"
      "  --top N               list at most N runs in the report (0 = all)\n"
      "  --jobs N              parallel manifest loads (0 = hw threads);\n"
      "                        every output is byte-identical at any value\n"
      "  --out FILE            write the Markdown report here (default:\n"
      "                        print to stdout)\n"
      "  --json-out FILE       write the checksummed #drbw-fleet JSON here\n"
      "  --flame-out FILE      merge every run's flight.log spans into one\n"
      "                        collapsed-stack profile here\n";
  const std::string cmd = "drbw fleet";
  std::string root;
  std::string out, json_out, flame_out;
  std::string value;
  report::FleetOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage;
      return 0;
    }
    if (take_option(cmd, arg, "baseline", argc, argv, i, value)) {
      options.baseline_path = value;
    } else if (take_option(cmd, arg, "threshold", argc, argv, i, value)) {
      char* end = nullptr;
      options.threshold = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || value.empty() ||
          options.threshold < 0.0) {
        throw UsageError(cmd + ": --threshold expects a non-negative "
                         "number, got '" + value + "'");
      }
    } else if (take_option(cmd, arg, "filter", argc, argv, i, value)) {
      if (value == "status=ok" || value == "status=failed") {
        options.filter_status = value.substr(std::string("status=").size());
      } else {
        throw UsageError(cmd + ": --filter expects status=ok or "
                         "status=failed, got '" + value + "'");
      }
    } else if (take_option(cmd, arg, "top", argc, argv, i, value)) {
      options.top =
          static_cast<std::size_t>(parse_int_option(cmd, "top", value, 0));
    } else if (take_option(cmd, arg, "jobs", argc, argv, i, value)) {
      options.jobs =
          static_cast<int>(parse_int_option(cmd, "jobs", value, 0));
    } else if (take_option(cmd, arg, "out", argc, argv, i, value)) {
      out = value;
    } else if (take_option(cmd, arg, "json-out", argc, argv, i, value)) {
      json_out = value;
    } else if (take_option(cmd, arg, "flame-out", argc, argv, i, value)) {
      flame_out = value;
    } else if (starts_with(arg, "--")) {
      throw UsageError(cmd + ": unknown option '" + arg + "'");
    } else if (root.empty()) {
      root = arg;
    } else {
      throw UsageError(cmd + " expects exactly one root directory");
    }
  }
  if (root.empty()) {
    throw UsageError(cmd + " expects a root directory\n" +
                     std::string(usage));
  }

  const report::FleetReport fleet = report::fleet_scan(root, options);
  const std::string markdown = report::render_fleet_markdown(fleet);
  if (out.empty()) {
    std::cout << markdown;
  } else {
    report::write_fleet_text(out, markdown);
    std::cout << "fleet report written to " << out << '\n';
  }
  if (!json_out.empty()) {
    report::write_fleet_json(fleet, json_out);
    std::cout << "fleet JSON written to " << json_out << '\n';
  }
  if (!flame_out.empty()) {
    obs::FlameFold fold;
    std::size_t folded = 0;
    for (const report::FleetRun& run : fleet.runs) {
      const std::string dir =
          run.dir == "." ? root : root + "/" + run.dir;
      if (report::fold_run_dir(dir, fold)) ++folded;
    }
    report::write_fleet_text(flame_out, fold.collapsed());
    std::cout << "flame profile (" << fold.stack_count() << " stack(s) from "
              << folded << " run(s)) written to " << flame_out << '\n';
  }
  if (!out.empty() || fleet.regressed) {
    std::cout << "fleet: " << fleet.dirs_scanned << " run dir(s), "
              << fleet.runs_ok << " ok, " << fleet.runs_failed << " failed, "
              << fleet.manifests_corrupt << " corrupt manifest(s)";
    if (fleet.regressed) {
      std::cout << "; " << fleet.regressions.size()
                << " run(s) REGRESSED vs " << options.baseline_path;
    }
    std::cout << '\n';
  }
  return fleet.regressed ? kExitPerfRegression : 0;
}

int cmd_flame(int argc, char** argv) {
  const char* usage =
      "drbw flame <run-dir|trace> [--out FILE] — collapsed-stack export\n"
      "\n"
      "Folds a run's deterministic spans into collapsed-stack format\n"
      "(`frame;frame;frame weight`, one line per stack — the input format\n"
      "of flamegraph.pl and speedscope).  A directory argument folds its\n"
      "flight.log; a file argument is either a #drbw-flight dump or a\n"
      "trace_event JSON written with --trace-out.  Without --out the\n"
      "profile goes to stdout (pipe it straight into flamegraph.pl).\n";
  const std::string cmd = "drbw flame";
  std::string input;
  std::string out;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage;
      return 0;
    }
    if (take_option(cmd, arg, "out", argc, argv, i, value)) {
      out = value;
    } else if (starts_with(arg, "--")) {
      throw UsageError(cmd + ": unknown option '" + arg + "'");
    } else if (input.empty()) {
      input = arg;
    } else {
      throw UsageError(cmd + " expects exactly one run dir or trace file");
    }
  }
  if (input.empty()) {
    throw UsageError(cmd + " expects a run dir or trace file\n" +
                     std::string(usage));
  }

  obs::FlameFold fold;
  std::error_code ec;
  if (std::filesystem::is_directory(input, ec)) {
    if (!report::fold_run_dir(input, fold)) {
      throw Error(input + ": no loadable " +
                      std::string(obs::kFlightFileName) +
                      " in this run dir (flame folds the flight recorder's "
                      "span breadcrumbs)",
                  ErrorCode::kNotFound);
    }
  } else {
    const std::string content = util::read_file_or_throw(input, "flame input");
    if (content.rfind("#drbw-flight", 0) == 0) {
      fold.add(report::flame_spans(report::load_flight_dump(input)));
    } else {
      try {
        fold.add(report::flame_spans_from_trace(Json::parse(content)));
      } catch (const Error& e) {
        throw Error(input + ": " + e.what(), e.code() == ErrorCode::kGeneric
                                                ? ErrorCode::kParse
                                                : e.code());
      }
    }
  }
  if (out.empty()) {
    std::cout << fold.collapsed();
  } else {
    report::write_fleet_text(out, fold.collapsed());
    std::cout << "flame profile (" << fold.stack_count()
              << " stack(s), total weight " << fold.total_weight()
              << ") written to " << out << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage: drbw <train|record|analyze|explain|serve|convert|inspect|"
      "topology|stats|doctor|fleet|flame> [options]\n"
      "       drbw perf diff <baseline/run.json> <after/run.json>...\n"
      "       drbw <subcommand> --help for details\n";
  if (argc < 2) {
    std::cout << usage;
    return kExitUsage;
  }
  const std::string sub = argv[1];
  try {
    if (sub == "train") return cmd_train(argc - 1, argv + 1);
    if (sub == "record") return cmd_record(argc - 1, argv + 1);
    if (sub == "analyze") return cmd_analyze(argc - 1, argv + 1);
    if (sub == "explain") return cmd_explain(argc - 1, argv + 1);
    if (sub == "serve") return cmd_serve(argc - 1, argv + 1);
    if (sub == "convert") return cmd_convert(argc - 1, argv + 1);
    if (sub == "inspect") return cmd_inspect(argc - 1, argv + 1);
    if (sub == "topology") return cmd_topology(argc - 1, argv + 1);
    if (sub == "stats") return cmd_stats(argc - 1, argv + 1);
    if (sub == "doctor") return cmd_doctor(argc - 1, argv + 1);
    if (sub == "fleet") return cmd_fleet(argc - 1, argv + 1);
    if (sub == "flame") return cmd_flame(argc - 1, argv + 1);
    if (sub == "perf") {
      if (argc < 3 || std::string(argv[2]) != "diff") {
        std::cerr << "drbw perf: the only verb is 'diff'\n" << usage;
        return kExitUsage;
      }
      return cmd_perf_diff(argc - 2, argv + 2);
    }
    std::cerr << "unknown subcommand '" << sub << "'\n" << usage;
    return kExitUnknownCommand;
  } catch (const Error& e) {
    // Typed failures map onto the sysexits-style table in the doc comment
    // (UsageError carries kUsage, so it lands on 64 like before).
    std::cerr << "drbw: " << e.what() << '\n';
    return exit_code_for(e.code());
  } catch (const std::exception& e) {
    std::cerr << "drbw: " << e.what() << '\n';
    return 1;
  }
}
