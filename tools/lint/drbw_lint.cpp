// drbw_lint — command-line driver for the determinism/concurrency linter.
//
//   drbw_lint [--root DIR] [--dirs a,b,c] [--max-findings N]
//
// Walks the repo's source directories, applies the rules in lint_rules.hpp,
// prints findings as "path:line: [rule] message", and exits nonzero when
// anything fired.  Registered as the `lint_test` ctest, so a violation fails
// the build's test stage exactly like a failing unit test.
#include <iostream>

#include "drbw/util/cli.hpp"
#include "drbw/util/error.hpp"
#include "drbw/util/strings.hpp"
#include "lint_rules.hpp"

int main(int argc, char** argv) {
  using namespace drbw;
  ArgParser parser("drbw_lint",
                   "Static checks for DR-BW's determinism and concurrency "
                   "contract (see DESIGN.md — Static analysis)");
  parser.add_option("root", "repository root to scan", ".");
  parser.add_option("dirs", "comma-separated subdirectories",
                    "src,include,tests,bench,tools,examples");
  parser.add_option("max-findings", "truncate output after N findings", "100");

  try {
    if (!parser.parse(argc, argv)) return 0;
    std::vector<std::string> dirs;
    for (const std::string& d : split(parser.option("dirs"), ',')) {
      if (!trim(d).empty()) dirs.push_back(trim(d));
    }
    const auto result = lint::run(parser.option("root"), dirs);

    const auto limit =
        static_cast<std::size_t>(parser.option_int("max-findings"));
    std::size_t shown = 0;
    for (const auto& finding : result.findings) {
      if (shown++ == limit) {
        std::cout << "... and " << result.findings.size() - limit
                  << " more finding(s)\n";
        break;
      }
      std::cout << lint::format_finding(finding) << "\n";
    }
    std::cout << "drbw_lint: " << result.files_scanned << " files, "
              << result.findings.size() << " finding(s)\n";
    return result.findings.empty() ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "drbw_lint: " << e.what() << "\n";
    return 2;
  }
}
