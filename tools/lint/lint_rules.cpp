#include "lint_rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "drbw/util/error.hpp"
#include "drbw/util/strings.hpp"

namespace drbw::lint {
namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

/// Emitter files: anything whose output is an ordered artifact (trace CSVs,
/// datasets, reports, rendered tables/charts, the CLI).  Iterating an
/// unordered container there silently couples the artifact to hash order.
constexpr std::array<std::string_view, 11> kEmitterMarks = {
    "/report/",    "trace_io",     "dataset",   "markdown",   "/util/csv",
    "/util/json",  "/util/table",  "/util/ascii_chart", "/tool/", "drbw_cli",
    "decision_tree",
};

}  // namespace

FileInfo classify(std::string_view path) {
  FileInfo info;
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  info.path = p;
  info.is_header = ends_with(p, ".hpp") || ends_with(p, ".h");
  info.is_public_header = info.is_header && contains(p, "include/drbw/");
  info.in_mem_layer = contains(p, "/mem/") || starts_with(p, "mem/");
  info.is_rng_home = ends_with(p, "util/rng.hpp");
  info.is_artifact_home = contains(p, "util/artifact");
  info.is_obs_wall_home = contains(p, "src/obs/");
  info.is_bench = contains(p, "bench/") || starts_with(p, "bench");
  info.is_diag_home = contains(p, "src/obs/") || contains(p, "tools/") ||
                      starts_with(p, "tools") || contains(p, "util/error");
  for (const auto mark : kEmitterMarks) {
    if (contains(p, mark)) {
      info.is_emitter = true;
      break;
    }
  }
  return info;
}

namespace {

/// Harvests `drbw-lint: allow(<rule>) <reason>` from one comment's text.
void harvest_allows(std::string_view comment, std::size_t line,
                    std::vector<SourceText::Allow>& out) {
  const std::size_t tag = comment.find("drbw-lint:");
  if (tag == std::string_view::npos) return;
  std::string_view rest = comment.substr(tag);
  const std::size_t open = rest.find("allow(");
  if (open == std::string_view::npos) return;
  rest = rest.substr(open + 6);
  const std::size_t close = rest.find(')');
  if (close == std::string_view::npos) return;
  SourceText::Allow allow;
  allow.line = line;
  allow.rule = trim(rest.substr(0, close));
  // The reason must actually say something: at least three characters with
  // at least one letter, so "." or "--" cannot wave a finding through.
  const std::string reason = trim(rest.substr(close + 1));
  allow.has_reason = false;
  if (reason.size() >= 3) {
    for (const char c : reason) {
      if (std::isalpha(static_cast<unsigned char>(c))) {
        allow.has_reason = true;
        break;
      }
    }
  }
  out.push_back(allow);
}

}  // namespace

SourceText preprocess(std::string_view content) {
  SourceText out;
  out.blanked.assign(content.size(), ' ');
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = content.size();
  auto keep = [&](std::size_t at) { out.blanked[at] = content[at]; };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      keep(i);
      ++line;
      ++i;
      continue;
    }
    // Line comment: blank it, harvest allow-annotations.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && content[i] != '\n') ++i;
      harvest_allows(content.substr(start, i - start), line, out.allows);
      continue;
    }
    // Block comment: blank it; an annotation anchors at the opening line.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const std::size_t start = i;
      const std::size_t start_line = line;
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') {
          keep(i);
          ++line;
        }
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      harvest_allows(content.substr(start, i - start), start_line, out.allows);
      continue;
    }
    // Raw string literal: R"delim( ... )delim", with optional u8/u/U/L prefix
    // (the prefix chars are identifier-like and survive blanking harmlessly).
    if (c == 'R' && i + 1 < n && content[i + 1] == '"' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(content[i - 1])) &&
                    content[i - 1] != '_'))) {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(') delim += content[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = content.find(closer, j);
      const std::size_t stop = end == std::string_view::npos ? n : end + closer.size();
      for (; i < stop; ++i) {
        if (content[i] == '\n') {
          keep(i);
          ++line;
        }
      }
      continue;
    }
    // String / char literal.  A ' preceded by an identifier char is a C++14
    // digit separator (6'000'000), not a literal.
    if (c == '"' ||
        (c == '\'' &&
         (i == 0 || (!std::isalnum(static_cast<unsigned char>(content[i - 1])) &&
                     content[i - 1] != '_')))) {
      const char quote = c;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\' && i + 1 < n) ++i;  // skip escaped char
        if (content[i] == '\n') {
          keep(i);
          ++line;
        }
        ++i;
      }
      if (i < n) ++i;  // closing quote
      continue;
    }
    keep(i);
    ++i;
  }
  return out;
}

namespace {

struct Token {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line = 0;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(const std::string& blanked) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = blanked.size();
  while (i < n) {
    const char c = blanked[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (ident_char(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = i;
      while (i < n && ident_char(blanked[i])) ++i;
      tokens.push_back(Token{std::string_view(blanked).substr(start, i - start),
                             start, line});
      continue;
    }
    ++i;
  }
  return tokens;
}

char next_nonspace(const std::string& s, std::size_t pos) {
  for (; pos < s.size(); ++pos) {
    if (!std::isspace(static_cast<unsigned char>(s[pos]))) return s[pos];
  }
  return '\0';
}

/// Member access (`x.free(...)`, `p->free(...)`) targets the repo's own
/// methods, not the libc symbol; qualified calls (`std::rand`) stay banned.
bool member_access(const std::string& s, std::size_t pos) {
  std::size_t p = pos;
  while (p > 0 && std::isspace(static_cast<unsigned char>(s[p - 1]))) --p;
  if (p == 0) return false;
  if (s[p - 1] == '.') return true;
  return p >= 2 && s[p - 1] == '>' && s[p - 2] == '-';
}

template <std::size_t N>
bool any_of(std::string_view text, const std::array<std::string_view, N>& set) {
  return std::find(set.begin(), set.end(), text) != set.end();
}

constexpr std::array<std::string_view, 9> kRandFns = {
    "rand",    "srand",   "rand_r",  "drand48", "lrand48",
    "mrand48", "srand48", "random",  "srandom",
};
constexpr std::array<std::string_view, 7> kWallclockFns = {
    "time", "clock", "gettimeofday", "localtime", "gmtime", "ctime",
    "timespec_get",
};
constexpr std::array<std::string_view, 3> kBuildStamps = {
    "__DATE__", "__TIME__", "__TIMESTAMP__"};
constexpr std::array<std::string_view, 3> kChronoClocks = {
    "system_clock", "steady_clock", "high_resolution_clock"};
constexpr std::array<std::string_view, 4> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};
constexpr std::array<std::string_view, 9> kAllocFns = {
    "malloc",        "calloc",         "realloc", "free", "aligned_alloc",
    "posix_memalign", "memalign",      "valloc",  "strdup",
};

/// First non-space character of each line, for #-directive detection.
std::vector<char> line_leads(const std::string& blanked) {
  std::vector<char> leads;
  char lead = '\0';
  bool seen = false;
  for (const char c : blanked) {
    if (c == '\n') {
      leads.push_back(lead);
      lead = '\0';
      seen = false;
      continue;
    }
    if (!seen && !std::isspace(static_cast<unsigned char>(c))) {
      lead = c;
      seen = true;
    }
  }
  leads.push_back(lead);
  return leads;
}

class Checker {
 public:
  Checker(const FileInfo& info, std::string_view content)
      : info_(info), source_(preprocess(content)), content_(content) {}

  std::vector<Finding> run() {
    const std::vector<Token> tokens = tokenize(source_.blanked);
    const std::vector<char> leads = line_leads(source_.blanked);
    auto on_directive = [&](const Token& t) {
      return t.line - 1 < leads.size() && leads[t.line - 1] == '#';
    };

    for (std::size_t k = 0; k < tokens.size(); ++k) {
      const Token& t = tokens[k];
      const bool called =
          next_nonspace(source_.blanked, t.pos + t.text.size()) == '(';
      const bool member = member_access(source_.blanked, t.pos);

      if (any_of(t.text, kRandFns) && called && !member) {
        report(t.line, "no-rand",
               "'" + std::string(t.text) +
                   "' is banned: all randomness must flow through the seeded "
                   "streams in drbw/util/rng.hpp");
      }
      if (t.text == "random_device" && !info_.is_rng_home) {
        report(t.line, "no-random-device",
               "std::random_device outside util/rng.hpp breaks run-to-run "
               "reproducibility");
      }
      if (any_of(t.text, kWallclockFns) && called && !member &&
          !on_directive(t)) {
        report(t.line, "no-wallclock",
               "'" + std::string(t.text) +
                   "(...)' reads the wall clock; seeds and any value that "
                   "reaches an artifact must be explicit (chrono timing of "
                   "benchmarks is fine — this symbol family is not)");
      }
      // Wall-clock types are confined to the obs wall-timing shim: outside
      // src/obs/ the finding is unconditional (no allow-comment laundering);
      // inside, the shim must still carry a justified allow.  Benches time
      // themselves by design and are exempt.
      if (any_of(t.text, kChronoClocks) && !info_.is_bench) {
        if (info_.is_obs_wall_home) {
          report(t.line, "obs-wallclock",
                 "std::chrono::" + std::string(t.text) +
                     " in the obs wall-timing shim needs a justified allow "
                     "comment (wall time is opt-in via --timing=wall only)");
        } else {
          findings_.push_back(Finding{
              info_.path, t.line, "obs-wallclock",
              "std::chrono::" + std::string(t.text) +
                  " outside src/obs/: wall-clock reads go through "
                  "obs::wall_now_micros() so golden artifacts stay "
                  "clock-free (no allow escape for this rule)"});
        }
      }
      if (any_of(t.text, kBuildStamps)) {
        report(t.line, "no-build-stamp",
               std::string(t.text) + " bakes build time into the binary");
      }
      if (any_of(t.text, kUnorderedContainers) && info_.is_emitter &&
          !on_directive(t)) {
        report(t.line, "unordered-iter",
               "unordered container in an emitter file: iteration order would "
               "leak hash order into ordered output (sort first, use std::map, "
               "or justify with an allow comment)");
      }
      if ((t.text == "new" || t.text == "delete") && !info_.in_mem_layer) {
        const bool deleted_fn =
            t.text == "delete" &&
            next_nonspace(source_.blanked, t.pos + t.text.size()) == ';';
        const bool operator_decl = k > 0 && tokens[k - 1].text == "operator";
        if (!deleted_fn && !operator_decl) {
          report(t.line, "raw-alloc",
                 "raw '" + std::string(t.text) +
                     "' outside mem/: use containers or smart pointers so "
                     "allocation stays trackable");
        }
      }
      if (any_of(t.text, kAllocFns) && called && !member &&
          !info_.in_mem_layer) {
        report(t.line, "raw-alloc",
               "'" + std::string(t.text) +
                   "(...)' outside mem/: the malloc family belongs to the "
                   "interception layer");
      }
      // Emitter files must not open output streams directly: artifacts go
      // through util::atomic_write_file / util::write_versioned_artifact
      // (write-temp-then-rename + checksummed header), so a crash or an
      // injected fault can never leave a partial file at the final path.
      if (t.text == "ofstream" && info_.is_emitter && !info_.is_artifact_home) {
        report(t.line, "no-naked-artifact-write",
               "std::ofstream in an emitter file: route artifact output "
               "through util::atomic_write_file or "
               "util::write_versioned_artifact so partial files cannot "
               "appear at the final path (or justify with an allow comment)");
      }
      // Ad-hoc stderr chatter bypasses the provenance layer: a diagnostic
      // printed with std::cerr never reaches the run manifest or the flight
      // recorder, so `drbw doctor` cannot see it.  Failures in library code
      // must flow through drbw::Error (the CLI front-end records it); only
      // the obs sinks, the tools' top-level drivers, the error primitives,
      // and self-reporting benches write stderr directly.
      if (t.text == "cerr" && !info_.is_diag_home && !info_.is_bench) {
        report(t.line, "no-naked-diagnostic",
               "std::cerr outside src/obs/, tools/, and util/error: throw "
               "drbw::Error or leave a flight-recorder breadcrumb so the run "
               "manifest and `drbw doctor` capture the diagnostic (or "
               "justify with an allow comment)");
      }
      if (t.text == "using" && k + 1 < tokens.size() &&
          tokens[k + 1].text == "namespace" && info_.is_header) {
        report(t.line, "include-hygiene",
               "'using namespace' in a header leaks into every includer");
      }
    }

    if (info_.is_header && source_.blanked.find("#pragma once") ==
                               std::string::npos) {
      report(1, "include-hygiene", "header is missing '#pragma once'");
    }
    if (info_.is_public_header) check_includes();
    check_allows();

    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    return std::move(findings_);
  }

 private:
  /// Public headers may include only "drbw/..." (quoted, full path) and
  /// system headers; <drbw/...> and relative quotes break self-containment
  /// conventions and the install layout.
  void check_includes() {
    std::size_t line = 0;
    for (const std::string& raw : split(std::string(content_), '\n')) {
      ++line;
      const std::string l = trim(raw);
      if (!starts_with(l, "#include")) continue;
      const std::string rest = trim(l.substr(8));
      if (starts_with(rest, "\"") && !starts_with(rest, "\"drbw/")) {
        report(line, "include-hygiene",
               "public headers must include project headers as \"drbw/...\"");
      }
      if (starts_with(rest, "<drbw/")) {
        report(line, "include-hygiene",
               "project headers use the quoted form: \"drbw/...\"");
      }
    }
  }

  /// An allow-comment without a reason is itself a violation: the escape
  /// hatch exists to *record* why hash order (or an allocation) is safe.
  void check_allows() {
    for (const auto& allow : source_.allows) {
      if (!allow.has_reason) {
        report(allow.line, "allow-missing-reason",
               "allow(" + allow.rule + ") needs a justification after the ')'");
      }
    }
  }

  bool allowed(std::size_t line, const std::string& rule) const {
    for (const auto& allow : source_.allows) {
      if (allow.rule != rule || !allow.has_reason) continue;
      if (allow.line == line || allow.line + 1 == line) return true;
    }
    return false;
  }

  void report(std::size_t line, const std::string& rule, std::string message) {
    if (allowed(line, rule)) return;
    findings_.push_back(Finding{info_.path, line, rule, std::move(message)});
  }

  const FileInfo& info_;
  SourceText source_;
  std::string_view content_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> check_file(const FileInfo& info,
                                std::string_view content) {
  return Checker(info, content).run();
}

RunResult run(const std::string& root,
              const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  RunResult result;
  std::vector<fs::path> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) throw Error("drbw_lint: cannot read " + file.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel =
        fs::relative(file, fs::path(root)).generic_string();
    const FileInfo info = classify(rel);
    auto found = check_file(info, buffer.str());
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(found.begin()),
                           std::make_move_iterator(found.end()));
    ++result.files_scanned;
  }
  return result;
}

std::string format_finding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace drbw::lint
