// drbw_lint — token-level static checks for the determinism contract.
//
// The reproduction pipeline promises bitwise-identical datasets, models, and
// traces at any --jobs count.  That promise dies the day someone reintroduces
// rand(), a wall-clock seed, or an unordered-container walk that feeds ordered
// output.  These rules are the machine-checked form of the contract: a small
// lexer blanks comments and string literals, then pattern rules fire on the
// remaining token stream.  Registered as the `lint_test` ctest so `ctest`
// fails on violations; `tests/lint_test.cpp` pins each rule against fixture
// snippets.
//
// Escape hatch: a `// drbw-lint: allow(<rule>) <reason>` comment on the same
// line or the line above suppresses that rule there.  The reason is
// mandatory — an allow without one is itself a finding.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace drbw::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Where a file sits in the layering, derived purely from its path.  The
/// rules key off this: the mem/ layer owns raw allocation, util/rng.hpp owns
/// entropy, and emitter files (trace/dataset/report writers) must not iterate
/// unordered containers.
struct FileInfo {
  std::string path;
  bool is_header = false;         // .hpp / .h
  bool is_public_header = false;  // under include/drbw/
  bool in_mem_layer = false;      // mem/ subsystem: raw allocation allowed
  bool is_rng_home = false;       // util/rng.hpp: entropy sources allowed
  bool is_emitter = false;        // writes traces / datasets / reports
  bool is_artifact_home = false;  // util/artifact.*: owns the atomic-write path
  bool is_obs_wall_home = false;  // src/obs/: the one wall-clock shim lives here
  bool is_bench = false;          // bench/: chrono self-timing is its job
  bool is_diag_home = false;      // src/obs/, tools/, util/error: stderr OK
};

/// Classifies `path` (any separator style; matched on '/'-normalized form).
FileInfo classify(std::string_view path);

/// A source file after lexing: comments and string/char literal *contents*
/// blanked to spaces (newlines preserved, so line numbers survive), plus the
/// allow-annotations harvested from comments before blanking.
struct SourceText {
  std::string blanked;
  struct Allow {
    std::size_t line = 0;  // the annotated line (the comment's own line)
    std::string rule;
    bool has_reason = false;
  };
  std::vector<Allow> allows;
};

/// Lexes `content`: strips // and /* */ comments, "..." / '...' literals and
/// raw strings, and collects `drbw-lint: allow(...)` annotations.
SourceText preprocess(std::string_view content);

/// Runs every rule over one file's content; returns findings in line order.
std::vector<Finding> check_file(const FileInfo& info, std::string_view content);

/// Result of linting a directory tree.
struct RunResult {
  std::size_t files_scanned = 0;
  std::vector<Finding> findings;
};

/// Lints every .cpp/.hpp/.h under `root`/<subdir> for each subdir, in
/// lexicographic file order (deterministic output, like everything else).
RunResult run(const std::string& root, const std::vector<std::string>& subdirs);

/// Renders one finding as "path:line: [rule] message".
std::string format_finding(const Finding& finding);

}  // namespace drbw::lint
